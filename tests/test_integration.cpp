// End-to-end integration tests: the paper's headline findings must hold on
// the full pipeline (synthetic population -> samplers -> binning -> metrics),
// and the pcap layer must round-trip an experiment's input without changing
// its results.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "charact/agent.h"
#include "core/metrics.h"
#include "core/samplers.h"
#include "core/targets.h"
#include "exper/experiment.h"
#include "exper/runner.h"
#include "pcap/pcap.h"

namespace netsample {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ex_ = new exper::Experiment(23, 8.0); }
  static void TearDownTestSuite() {
    delete ex_;
    ex_ = nullptr;
  }
  static exper::Experiment* ex_;

  exper::CellConfig cell(core::Method m, core::Target t,
                         std::uint64_t k) const {
    exper::CellConfig cfg;
    cfg.method = m;
    cfg.target = t;
    cfg.granularity = k;
    cfg.interval = ex_->interval(256.0);
    cfg.mean_interarrival_usec = ex_->mean_interarrival_usec();
    cfg.replications = 5;
    cfg.base_seed = 17;
    return cfg;
  }
};

exper::Experiment* IntegrationTest::ex_ = nullptr;

TEST_F(IntegrationTest, HeadlineResultTimerMethodsAreUniformlyWorse) {
  for (auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    const double sys = exper::run_cell(
                           cell(core::Method::kSystematicCount, target, 64))
                           .phi_mean();
    const double strat = exper::run_cell(
                             cell(core::Method::kStratifiedCount, target, 64))
                             .phi_mean();
    const double rand = exper::run_cell(
                            cell(core::Method::kSimpleRandom, target, 64))
                            .phi_mean();
    const double tsys = exper::run_cell(
                            cell(core::Method::kSystematicTimer, target, 64))
                            .phi_mean();
    const double tstrat = exper::run_cell(
                              cell(core::Method::kStratifiedTimer, target, 64))
                              .phi_mean();
    const double worst_packet = std::max({sys, strat, rand});
    EXPECT_GT(tsys, 2.0 * worst_packet) << core::target_name(target);
    EXPECT_GT(tstrat, 2.0 * worst_packet) << core::target_name(target);
  }
}

TEST_F(IntegrationTest, HeadlineResultWithinClassDifferencesAreSmall) {
  const auto target = core::Target::kPacketSize;
  const double sys =
      exper::run_cell(cell(core::Method::kSystematicCount, target, 64)).phi_mean();
  const double strat =
      exper::run_cell(cell(core::Method::kStratifiedCount, target, 64)).phi_mean();
  const double rand =
      exper::run_cell(cell(core::Method::kSimpleRandom, target, 64)).phi_mean();
  const double lo = std::min({sys, strat, rand});
  const double hi = std::max({sys, strat, rand});
  EXPECT_LT(hi - lo, 0.03);  // all packet methods are near-equivalent
}

TEST_F(IntegrationTest, TimerBiasSkewsInterarrivalsTowardLargeValues) {
  // The mechanism: timer sampling over-selects packets after long gaps, so
  // the top interarrival bin (>3600us) is over-represented.
  auto interval = ex_->interval(256.0);
  const auto pop =
      core::bin_population(interval, core::Target::kInterarrivalTime);
  const auto pop_props = pop.proportions();

  core::SamplerSpec spec;
  spec.method = core::Method::kSystematicTimer;
  spec.granularity = 64;
  spec.mean_interarrival_usec = ex_->mean_interarrival_usec();
  auto sampler = core::make_sampler(spec);
  const auto sample = core::draw(interval, *sampler);
  const auto obs = core::bin_sample(sample, core::Target::kInterarrivalTime);
  const auto obs_props = obs.proportions();

  EXPECT_GT(obs_props.back(), 1.5 * pop_props.back());   // >3600us inflated
  EXPECT_LT(obs_props.front(), pop_props.front());        // <800us deflated
}

TEST_F(IntegrationTest, WaitingTimeParadoxIsQuantitative) {
  // METHODOLOGY.md section 2: a timer trigger lands in a gap with
  // probability proportional to its length, so the sampled predecessor-gap
  // mean approaches E[g^2]/E[g] = E[g](1 + cv^2). Verify the measured
  // inflation against the population's own cv.
  auto interval = ex_->interval(512.0);
  const auto gaps = interval.interarrivals();
  double sum = 0.0, sum2 = 0.0;
  for (double g : gaps) {
    sum += g;
    sum2 += g * g;
  }
  const double n = static_cast<double>(gaps.size());
  const double mean = sum / n;
  const double length_biased_mean = (sum2 / n) / mean;  // E[g^2]/E[g]

  core::SamplerSpec spec;
  spec.method = core::Method::kSystematicTimer;
  spec.granularity = 128;
  spec.mean_interarrival_usec = ex_->mean_interarrival_usec();
  auto sampler = core::make_sampler(spec);
  const auto sample = core::draw(interval, *sampler);
  const auto sampled_gaps =
      core::sample_values(sample, core::Target::kInterarrivalTime);
  ASSERT_GT(sampled_gaps.size(), 100u);
  double s_sum = 0.0;
  for (double g : sampled_gaps) s_sum += g;
  const double sampled_mean = s_sum / static_cast<double>(sampled_gaps.size());

  // The timer-sampled mean gap must be strongly inflated toward the
  // length-biased prediction (coalescing of expiries and the clock floor
  // keep it from matching exactly; 25% tolerance).
  EXPECT_GT(sampled_mean, 1.5 * mean);
  EXPECT_NEAR(sampled_mean, length_biased_mean, 0.25 * length_biased_mean);

  // Packet-count sampling shows no such inflation.
  core::SamplerSpec unbiased = spec;
  unbiased.method = core::Method::kSystematicCount;
  auto count_sampler = core::make_sampler(unbiased);
  const auto count_sample = core::draw(interval, *count_sampler);
  const auto count_gaps =
      core::sample_values(count_sample, core::Target::kInterarrivalTime);
  double c_sum = 0.0;
  for (double g : count_gaps) c_sum += g;
  const double count_mean = c_sum / static_cast<double>(count_gaps.size());
  EXPECT_NEAR(count_mean, mean, 0.15 * mean);
}

TEST_F(IntegrationTest, PhiDegradesWithCoarserSampling) {
  exper::CellConfig cfg =
      cell(core::Method::kSystematicCount, core::Target::kPacketSize, 2);
  const auto cells = exper::sweep_granularity(cfg, {4, 64, 1024, 8192});
  // Mean phi should be (weakly) increasing overall: compare ends.
  EXPECT_LT(cells.front().phi_mean() * 3, cells.back().phi_mean() + 1e-9);
  // Variance across replications also grows (Figure 6's second effect).
  const auto spread = [](const exper::CellResult& c) {
    const auto b = c.phi_boxplot();
    return b.max - b.min;
  };
  EXPECT_LE(spread(cells.front()), spread(cells.back()) + 1e-9);
}

TEST_F(IntegrationTest, OperationalFiftyToOnePassesChiSquared) {
  // Section 6: systematic 1/50 should almost always be accepted by the
  // chi-squared test at the 0.05 level.
  exper::CellConfig cfg =
      cell(core::Method::kSystematicCount, core::Target::kPacketSize, 50);
  cfg.replications = 50;
  const auto r = exper::run_cell(cfg);
  EXPECT_LE(r.rejections_at(0.05), 8);  // paper saw 2-3 of 50
}

TEST_F(IntegrationTest, PcapRoundTripPreservesExperimentResults) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "netsample_integration.pcap").string();

  // Use a 20-second slice to keep file size modest.
  auto slice = ex_->interval(20.0);
  trace::Trace sliced(std::vector<trace::PacketRecord>(slice.begin(), slice.end()));
  ASSERT_TRUE(pcap::write_trace(path, sliced, 128).is_ok());
  auto loaded = pcap::read_trace(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), sliced.size());

  // The same sampler on the reloaded trace yields identical phi.
  auto score = [&](trace::TraceView v) {
    core::SystematicCountSampler s(16);
    const auto sample = core::draw(v, s);
    const auto pop = core::bin_population(v, core::Target::kPacketSize);
    const auto obs = core::bin_sample(sample, core::Target::kPacketSize);
    return core::score_sample(obs, pop, 1.0 / 16.0).phi;
  };
  EXPECT_DOUBLE_EQ(score(sliced.view()), score(loaded->view()));
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, SampledCharacterizationApproximatesFullObjects) {
  // Feed the characterization agent everything vs a 1-in-50 systematic
  // selection; the protocol mix proportions should be close.
  auto slice = ex_->interval(120.0);

  charact::CollectionAgent full_agent(charact::NodeType::kT3);
  full_agent.run(slice);

  int counter = 0;
  charact::CollectionAgent sampled_agent(
      charact::NodeType::kT3,
      [&counter](const trace::PacketRecord&) { return counter++ % 50 == 0; });
  sampled_agent.run(slice);

  ASSERT_FALSE(full_agent.reports().empty());
  ASSERT_FALSE(sampled_agent.reports().empty());
  const auto& full = full_agent.reports()[0];
  const auto& samp = sampled_agent.reports()[0];

  const double full_total = static_cast<double>(full.packets_examined);
  const double samp_total = static_cast<double>(samp.packets_examined);
  ASSERT_GT(samp_total, 100.0);
  for (const auto& [proto, vol] : full.protocols) {
    const double p_full = static_cast<double>(vol.packets) / full_total;
    const auto it = samp.protocols.find(proto);
    const double p_samp =
        it == samp.protocols.end()
            ? 0.0
            : static_cast<double>(it->second.packets) / samp_total;
    EXPECT_NEAR(p_samp, p_full, 0.05) << "protocol " << int(proto);
  }
}

}  // namespace
}  // namespace netsample
