#include "core/samplers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <string>

#include "core/targets.h"

namespace netsample::core {
namespace {

trace::Trace uniform_trace(std::size_t n, std::uint64_t gap_usec = 1000) {
  std::vector<trace::PacketRecord> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace::PacketRecord p;
    p.timestamp = MicroTime{i * gap_usec};
    p.size = static_cast<std::uint16_t>(40 + (i % 3) * 256);
    v.push_back(p);
  }
  return trace::Trace(std::move(v));
}

// --------------------------------------------------------------------------
// Systematic / count

TEST(SystematicCount, SelectsEveryKth) {
  auto t = uniform_trace(100);
  SystematicCountSampler s(10);
  const auto idx = draw_sample_indices(t.view(), s);
  ASSERT_EQ(idx.size(), 10u);
  for (std::size_t i = 0; i < idx.size(); ++i) EXPECT_EQ(idx[i], i * 10);
}

TEST(SystematicCount, OffsetShiftsSelection) {
  auto t = uniform_trace(100);
  SystematicCountSampler s(10, 3);
  const auto idx = draw_sample_indices(t.view(), s);
  ASSERT_EQ(idx.size(), 10u);
  EXPECT_EQ(idx[0], 3u);
  EXPECT_EQ(idx[9], 93u);
}

TEST(SystematicCount, KOneSelectsEverything) {
  auto t = uniform_trace(25);
  SystematicCountSampler s(1);
  EXPECT_EQ(draw_sample_indices(t.view(), s).size(), 25u);
}

TEST(SystematicCount, BeginResetsPosition) {
  auto t = uniform_trace(20);
  SystematicCountSampler s(7);
  const auto first = draw_sample_indices(t.view(), s);
  const auto second = draw_sample_indices(t.view(), s);
  EXPECT_EQ(first, second);
}

TEST(SystematicCount, InvalidParamsThrow) {
  EXPECT_THROW(SystematicCountSampler(0), std::invalid_argument);
  EXPECT_THROW(SystematicCountSampler(5, 5), std::invalid_argument);
  EXPECT_THROW(SystematicCountSampler(5, 9), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Stratified / count

TEST(StratifiedCount, OnePerBucket) {
  auto t = uniform_trace(1000);
  StratifiedCountSampler s(10, Rng(42));
  const auto idx = draw_sample_indices(t.view(), s);
  ASSERT_EQ(idx.size(), 100u);
  for (std::size_t b = 0; b < 100; ++b) {
    EXPECT_GE(idx[b], b * 10);
    EXPECT_LT(idx[b], (b + 1) * 10);
  }
}

TEST(StratifiedCount, PositionsVaryWithinBuckets) {
  auto t = uniform_trace(1000);
  StratifiedCountSampler s(10, Rng(42));
  const auto idx = draw_sample_indices(t.view(), s);
  std::set<std::uint64_t> offsets;
  for (std::size_t b = 0; b < idx.size(); ++b) offsets.insert(idx[b] % 10);
  EXPECT_GT(offsets.size(), 3u);  // truly random within buckets
}

TEST(StratifiedCount, PassesAreReplayable) {
  auto t = uniform_trace(200);
  StratifiedCountSampler s(8, Rng(7));
  EXPECT_EQ(draw_sample_indices(t.view(), s), draw_sample_indices(t.view(), s));
}

TEST(StratifiedCount, DifferentSeedsDiffer) {
  auto t = uniform_trace(500);
  StratifiedCountSampler a(10, Rng(1));
  StratifiedCountSampler b(10, Rng(2));
  EXPECT_NE(draw_sample_indices(t.view(), a), draw_sample_indices(t.view(), b));
}

TEST(StratifiedCount, InvalidKThrows) {
  EXPECT_THROW(StratifiedCountSampler(0, Rng(1)), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Simple random

TEST(SimpleRandom, ExactSampleSize) {
  auto t = uniform_trace(1000);
  SimpleRandomSampler s(100, 1000, Rng(3));
  EXPECT_EQ(draw_sample_indices(t.view(), s).size(), 100u);
}

TEST(SimpleRandom, SelectsAllWhenNEqualsPopulation) {
  auto t = uniform_trace(50);
  SimpleRandomSampler s(50, 50, Rng(3));
  EXPECT_EQ(draw_sample_indices(t.view(), s).size(), 50u);
}

TEST(SimpleRandom, UniformInclusionProbability) {
  // Each position should be included ~ n/N of the time across many passes.
  auto t = uniform_trace(60);
  std::vector<int> hits(60, 0);
  const int passes = 3000;
  for (int p = 0; p < passes; ++p) {
    SimpleRandomSampler s(15, 60, Rng(static_cast<std::uint64_t>(p) + 1));
    for (auto i : draw_sample_indices(t.view(), s)) ++hits[i];
  }
  for (int h : hits) {
    EXPECT_NEAR(h / static_cast<double>(passes), 0.25, 0.05);
  }
}

TEST(SimpleRandom, ExcessPopulationDeclarationYieldsFewer) {
  // If the declared population exceeds the actual stream, the sample is
  // smaller but never larger than n.
  auto t = uniform_trace(100);
  SimpleRandomSampler s(50, 200, Rng(3));
  const auto idx = draw_sample_indices(t.view(), s);
  EXPECT_LE(idx.size(), 50u);
  EXPECT_GT(idx.size(), 10u);
}

TEST(SimpleRandom, StreamLongerThanPopulationNeverOverselects) {
  auto t = uniform_trace(100);
  SimpleRandomSampler s(20, 50, Rng(3));
  const auto idx = draw_sample_indices(t.view(), s);
  EXPECT_EQ(idx.size(), 20u);
  for (auto i : idx) EXPECT_LT(i, 50u);
}

TEST(SimpleRandom, NGreaterThanPopulationThrows) {
  EXPECT_THROW(SimpleRandomSampler(10, 5, Rng(1)), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Scheduled stratified (variable bucket sizes)

TEST(ScheduledStratified, SingleEntryMatchesConstantBuckets) {
  auto t = uniform_trace(1000);
  ScheduledStratifiedSampler a({10}, Rng(42));
  StratifiedCountSampler b(10, Rng(42));
  EXPECT_EQ(draw_sample_indices(t.view(), a), draw_sample_indices(t.view(), b));
}

TEST(ScheduledStratified, OnePerBucketAcrossMixedSizes) {
  auto t = uniform_trace(600);
  ScheduledStratifiedSampler s({5, 15, 40}, Rng(1));  // cycle of 60 packets
  const auto idx = draw_sample_indices(t.view(), s);
  ASSERT_EQ(idx.size(), 30u);  // 10 cycles x 3 buckets
  // Check each selection falls inside its bucket.
  std::size_t start = 0;
  std::size_t pick = 0;
  const std::uint64_t sizes[] = {5, 15, 40};
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (auto bs : sizes) {
      ASSERT_LT(pick, idx.size());
      EXPECT_GE(idx[pick], start);
      EXPECT_LT(idx[pick], start + bs);
      start += bs;
      ++pick;
    }
  }
}

TEST(ScheduledStratified, MeanFraction) {
  ScheduledStratifiedSampler s({5, 15, 40}, Rng(1));
  EXPECT_NEAR(s.mean_fraction(), 3.0 / 60.0, 1e-12);
}

TEST(ScheduledStratified, AchievedFractionMatchesMean) {
  auto t = uniform_trace(60000);
  ScheduledStratifiedSampler s({20, 80}, Rng(3));
  const auto idx = draw_sample_indices(t.view(), s);
  EXPECT_NEAR(static_cast<double>(idx.size()) / 60000.0, 2.0 / 100.0, 0.001);
}

TEST(ScheduledStratified, Validation) {
  EXPECT_THROW(ScheduledStratifiedSampler({}, Rng(1)), std::invalid_argument);
  EXPECT_THROW(ScheduledStratifiedSampler({5, 0, 3}, Rng(1)),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Bernoulli (geometric skip)

TEST(Bernoulli, AchievedFractionMatchesProbability) {
  auto t = uniform_trace(100000);
  BernoulliSampler s(0.02, Rng(5));
  const auto idx = draw_sample_indices(t.view(), s);
  // Binomial(100000, 0.02): mean 2000, sd ~44. Allow 5 sigma.
  EXPECT_NEAR(static_cast<double>(idx.size()), 2000.0, 220.0);
}

TEST(Bernoulli, ProbabilityOneSelectsAll) {
  auto t = uniform_trace(100);
  BernoulliSampler s(1.0, Rng(5));
  EXPECT_EQ(draw_sample_indices(t.view(), s).size(), 100u);
}

TEST(Bernoulli, SkipsAreGeometric) {
  // Memorylessness: the gaps between selections should have mean ~1/p and
  // sd ~ mean (geometric distribution).
  auto t = uniform_trace(200000);
  BernoulliSampler s(0.01, Rng(7));
  const auto idx = draw_sample_indices(t.view(), s);
  ASSERT_GT(idx.size(), 500u);
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t i = 1; i < idx.size(); ++i) {
    const double gap = static_cast<double>(idx[i] - idx[i - 1]);
    sum += gap;
    sum2 += gap * gap;
  }
  const double n = static_cast<double>(idx.size() - 1);
  const double mean = sum / n;
  const double sd = std::sqrt(sum2 / n - mean * mean);
  EXPECT_NEAR(mean, 100.0, 10.0);
  EXPECT_NEAR(sd, 100.0, 15.0);
}

TEST(Bernoulli, Replayable) {
  auto t = uniform_trace(5000);
  BernoulliSampler s(0.05, Rng(11));
  EXPECT_EQ(draw_sample_indices(t.view(), s), draw_sample_indices(t.view(), s));
}

TEST(Bernoulli, Validation) {
  EXPECT_THROW(BernoulliSampler(0.0, Rng(1)), std::invalid_argument);
  EXPECT_THROW(BernoulliSampler(-0.1, Rng(1)), std::invalid_argument);
  EXPECT_THROW(BernoulliSampler(1.5, Rng(1)), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Systematic / timer

TEST(SystematicTimer, SelectsFirstPacketAfterEachExpiry) {
  // Packets every 1000us; timer every 3500us selects packets just after
  // 3500, 7000, 10500, ... i.e. indices 4, 7, 11, 14, ...
  auto t = uniform_trace(20, 1000);
  SystematicTimerSampler s(MicroDuration{3500});
  const auto idx = draw_sample_indices(t.view(), s);
  ASSERT_GE(idx.size(), 4u);
  EXPECT_EQ(idx[0], 4u);   // t=4000 >= 3500
  EXPECT_EQ(idx[1], 7u);   // t=7000 >= 7000
  EXPECT_EQ(idx[2], 11u);  // t=11000 >= 10500
  EXPECT_EQ(idx[3], 14u);  // t=14000 >= 14000
}

TEST(SystematicTimer, CoalescePolicySelectsOncePerGap) {
  // One long idle gap spanning many expiries must yield a single selection.
  std::vector<trace::PacketRecord> v;
  for (std::uint64_t us : {0ULL, 1000ULL, 100000ULL, 101000ULL}) {
    trace::PacketRecord p;
    p.timestamp = MicroTime{us};
    v.push_back(p);
  }
  trace::Trace t(std::move(v));
  SystematicTimerSampler s(MicroDuration{500}, ExpiryPolicy::kCoalesce);
  const auto idx = draw_sample_indices(t.view(), s);
  // idx 1 (first expiry), idx 2 (one selection for the ~197 missed expiries),
  // idx 3 (next expiry after 100000).
  EXPECT_EQ(idx, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(SystematicTimer, QueuePolicyDrainsBackToBack) {
  std::vector<trace::PacketRecord> v;
  for (std::uint64_t us : {0ULL, 10000ULL, 10100ULL, 10200ULL, 10300ULL}) {
    trace::PacketRecord p;
    p.timestamp = MicroTime{us};
    v.push_back(p);
  }
  trace::Trace t(std::move(v));
  SystematicTimerSampler s(MicroDuration{2000}, ExpiryPolicy::kQueue);
  const auto idx = draw_sample_indices(t.view(), s);
  // Five expiries passed by t=10000 (2000,4000,...,10000): all four packets
  // after the gap are selected while the queue drains.
  EXPECT_EQ(idx, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(SystematicTimer, PhaseShiftsGrid) {
  auto t = uniform_trace(20, 1000);
  SystematicTimerSampler a(MicroDuration{3000});
  SystematicTimerSampler b(MicroDuration{3000}, ExpiryPolicy::kCoalesce,
                           MicroDuration{1500});
  const auto ia = draw_sample_indices(t.view(), a);
  const auto ib = draw_sample_indices(t.view(), b);
  ASSERT_FALSE(ia.empty());
  ASSERT_FALSE(ib.empty());
  EXPECT_NE(ia, ib);
}

TEST(SystematicTimer, InvalidParamsThrow) {
  EXPECT_THROW(SystematicTimerSampler(MicroDuration{0}), std::invalid_argument);
  EXPECT_THROW(SystematicTimerSampler(MicroDuration{-10}), std::invalid_argument);
  EXPECT_THROW(SystematicTimerSampler(MicroDuration{10}, ExpiryPolicy::kCoalesce,
                                      MicroDuration{10}),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Stratified / timer

TEST(StratifiedTimer, SamplingFractionRoughlyMatches) {
  auto t = uniform_trace(10000, 1000);  // 10s of packets at 1000pps
  StratifiedTimerSampler s(MicroDuration{10000}, Rng(5));
  const auto idx = draw_sample_indices(t.view(), s);
  // ~1 selection per 10ms window over ~1000 windows, minus the windows
  // skipped when a trigger near a window's end selects a packet in the next
  // window (the paper's "necessary approximation" costs ~10% here because
  // the mean gap is 1/10 of the window).
  EXPECT_GT(idx.size(), 850u);
  EXPECT_LE(idx.size(), 1000u);
}

TEST(StratifiedTimer, AtMostOneSelectionPerWindow) {
  auto t = uniform_trace(10000, 1000);
  StratifiedTimerSampler s(MicroDuration{10000}, Rng(6));
  const auto sample = draw(t.view(), s);
  std::map<std::uint64_t, int> per_window;
  for (auto i : sample.indices) {
    ++per_window[t[i].timestamp.usec / 10000];
  }
  for (const auto& [w, c] : per_window) {
    (void)w;
    EXPECT_LE(c, 1);
  }
}

TEST(StratifiedTimer, Replayable) {
  auto t = uniform_trace(500, 997);
  StratifiedTimerSampler s(MicroDuration{5000}, Rng(8));
  EXPECT_EQ(draw_sample_indices(t.view(), s), draw_sample_indices(t.view(), s));
}

TEST(StratifiedTimer, InvalidPeriodThrows) {
  EXPECT_THROW(StratifiedTimerSampler(MicroDuration{0}, Rng(1)),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Factory + cross-method properties

TEST(MakeSampler, BuildsEveryMethod) {
  SamplerSpec spec;
  spec.granularity = 10;
  spec.population = 1000;
  spec.mean_interarrival_usec = 2358.0;
  for (auto m : {Method::kSystematicCount, Method::kStratifiedCount,
                 Method::kSimpleRandom, Method::kSystematicTimer,
                 Method::kStratifiedTimer}) {
    spec.method = m;
    auto s = make_sampler(spec);
    ASSERT_NE(s, nullptr);
    EXPECT_FALSE(s->name().empty());
  }
}

TEST(MakeSampler, ValidatesSpecs) {
  SamplerSpec spec;
  spec.granularity = 0;
  EXPECT_THROW((void)make_sampler(spec), std::invalid_argument);

  spec.granularity = 10;
  spec.method = Method::kSimpleRandom;
  spec.population = 0;
  EXPECT_THROW((void)make_sampler(spec), std::invalid_argument);

  spec.method = Method::kSystematicTimer;
  spec.mean_interarrival_usec = 0.0;
  EXPECT_THROW((void)make_sampler(spec), std::invalid_argument);
}

TEST(MethodNames, AreDistinct) {
  std::set<std::string> names;
  for (auto m : {Method::kSystematicCount, Method::kStratifiedCount,
                 Method::kSimpleRandom, Method::kSystematicTimer,
                 Method::kStratifiedTimer}) {
    names.insert(method_name(m));
  }
  EXPECT_EQ(names.size(), 5u);
  EXPECT_TRUE(method_is_timer_driven(Method::kSystematicTimer));
  EXPECT_TRUE(method_is_timer_driven(Method::kStratifiedTimer));
  EXPECT_FALSE(method_is_timer_driven(Method::kSystematicCount));
}

/// Property suite: invariants that must hold for every discipline.
class AllMethodsTest : public ::testing::TestWithParam<Method> {};

TEST_P(AllMethodsTest, AchievedFractionApproximatesTarget) {
  auto t = uniform_trace(20000, 2358);
  SamplerSpec spec;
  spec.method = GetParam();
  spec.granularity = 20;
  spec.population = t.size();
  spec.mean_interarrival_usec = 2358.0;
  spec.seed = 99;
  auto sampler = make_sampler(spec);
  const auto sample = draw(t.view(), *sampler);
  EXPECT_NEAR(sample.fraction(), 0.05, 0.01);
}

TEST_P(AllMethodsTest, IndicesAreStrictlyIncreasingAndInRange) {
  auto t = uniform_trace(5000, 1700);
  SamplerSpec spec;
  spec.method = GetParam();
  spec.granularity = 16;
  spec.population = t.size();
  spec.mean_interarrival_usec = 1700.0;
  auto sampler = make_sampler(spec);
  const auto idx = draw_sample_indices(t.view(), *sampler);
  ASSERT_FALSE(idx.empty());
  for (std::size_t i = 1; i < idx.size(); ++i) {
    EXPECT_LT(idx[i - 1], idx[i]);
  }
  EXPECT_LT(idx.back(), t.size());
}

TEST_P(AllMethodsTest, RepeatedDrawsAreIdentical) {
  auto t = uniform_trace(3000, 2000);
  SamplerSpec spec;
  spec.method = GetParam();
  spec.granularity = 8;
  spec.population = t.size();
  spec.mean_interarrival_usec = 2000.0;
  spec.seed = 4;
  auto sampler = make_sampler(spec);
  const auto a = draw_sample_indices(t.view(), *sampler);
  const auto b = draw_sample_indices(t.view(), *sampler);
  EXPECT_EQ(a, b);
}

TEST_P(AllMethodsTest, EmptyViewYieldsEmptySample) {
  SamplerSpec spec;
  spec.method = GetParam();
  spec.granularity = 4;
  spec.population = 100;  // declared, but stream is empty
  spec.mean_interarrival_usec = 1000.0;
  auto sampler = make_sampler(spec);
  EXPECT_TRUE(draw_sample_indices(trace::TraceView{}, *sampler).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethodsTest,
    ::testing::Values(Method::kSystematicCount, Method::kStratifiedCount,
                      Method::kSimpleRandom, Method::kSystematicTimer,
                      Method::kStratifiedTimer),
    [](const ::testing::TestParamInfo<Method>& info) {
      switch (info.param) {
        case Method::kSystematicCount: return "SystematicCount";
        case Method::kStratifiedCount: return "StratifiedCount";
        case Method::kSimpleRandom: return "SimpleRandom";
        case Method::kSystematicTimer: return "SystematicTimer";
        case Method::kStratifiedTimer: return "StratifiedTimer";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace netsample::core
