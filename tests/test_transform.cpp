#include "trace/transform.h"

#include <gtest/gtest.h>

namespace netsample::trace {
namespace {

PacketRecord pkt(std::uint64_t usec, std::uint8_t proto = 6,
                 std::uint16_t dport = 23, std::uint16_t size = 100) {
  PacketRecord p;
  p.timestamp = MicroTime{usec};
  p.protocol = proto;
  p.src = net::Ipv4Address(10, 0, 0, 1);
  p.dst = net::Ipv4Address(192, 168, 1, 2);
  p.src_port = 4000;
  p.dst_port = dport;
  p.size = size;
  return p;
}

TEST(Merge, InterleavesByTimestamp) {
  Trace a({pkt(0), pkt(200), pkt(400)});
  Trace b({pkt(100), pkt(300)});
  const auto merged = merge({a.view(), b.view()});
  ASSERT_EQ(merged.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(merged[i].timestamp.usec, i * 100);
  }
}

TEST(Merge, StableOnTies) {
  Trace a({pkt(100, 6), pkt(200, 6)});
  Trace b({pkt(100, 17), pkt(200, 17)});
  const auto merged = merge({a.view(), b.view()});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].protocol, 6);   // input 0 wins ties
  EXPECT_EQ(merged[1].protocol, 17);
  EXPECT_EQ(merged[2].protocol, 6);
  EXPECT_EQ(merged[3].protocol, 17);
}

TEST(Merge, HandlesEmptyInputs) {
  Trace a({pkt(0)});
  EXPECT_EQ(merge({}).size(), 0u);
  EXPECT_EQ(merge({TraceView{}, a.view(), TraceView{}}).size(), 1u);
}

TEST(Merge, ManyWay) {
  std::vector<Trace> traces;
  std::vector<TraceView> views;
  for (int i = 0; i < 7; ++i) {
    std::vector<PacketRecord> v;
    for (int j = 0; j < 10; ++j) {
      v.push_back(pkt(static_cast<std::uint64_t>(i + 7 * j) * 10));
    }
    traces.emplace_back(std::move(v));
  }
  for (const auto& t : traces) views.push_back(t.view());
  const auto merged = merge(views);
  ASSERT_EQ(merged.size(), 70u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].timestamp.usec, merged[i].timestamp.usec);
  }
}

TEST(Filter, KeepsMatchingPackets) {
  Trace t({pkt(0, 6), pkt(100, 17), pkt(200, 6), pkt(300, 1)});
  const auto tcp = filter(t.view(), by_protocol(6));
  ASSERT_EQ(tcp.size(), 2u);
  EXPECT_EQ(tcp[0].timestamp.usec, 0u);
  EXPECT_EQ(tcp[1].timestamp.usec, 200u);
}

TEST(Filter, ByServicePort) {
  Trace t({pkt(0, 6, 23), pkt(100, 6, 25), pkt(200, 17, 23), pkt(300, 1, 23)});
  const auto telnet = filter(t.view(), by_service_port(23));
  ASSERT_EQ(telnet.size(), 2u);  // TCP and UDP port 23; ICMP excluded
}

TEST(Filter, ByDestinationNetwork) {
  Trace t({pkt(0), pkt(100)});
  const auto net = net::NetworkNumber::of(net::Ipv4Address(192, 168, 1, 99));
  EXPECT_EQ(filter(t.view(), by_destination_network(net)).size(), 2u);
  const auto other = net::NetworkNumber::of(net::Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(filter(t.view(), by_destination_network(other)).size(), 0u);
}

TEST(TimeShift, ShiftsForward) {
  Trace t({pkt(0), pkt(100)});
  const auto shifted = time_shift(t.view(), MicroDuration{5000});
  EXPECT_EQ(shifted[0].timestamp.usec, 5000u);
  EXPECT_EQ(shifted[1].timestamp.usec, 5100u);
}

TEST(TimeShift, ShiftsBackward) {
  Trace t({pkt(1000), pkt(2000)});
  const auto shifted = time_shift(t.view(), MicroDuration{-1000});
  EXPECT_EQ(shifted[0].timestamp.usec, 0u);
}

TEST(TimeShift, UnderflowThrows) {
  Trace t({pkt(100)});
  EXPECT_THROW((void)time_shift(t.view(), MicroDuration{-200}),
               std::invalid_argument);
}

TEST(Merge, DoublingLoadViaShiftedOverlay) {
  // The documented recipe: overlay a trace with a shifted copy of itself.
  Trace t({pkt(0), pkt(1000), pkt(2000)});
  const auto copy = time_shift(t.view(), MicroDuration{500});
  const auto doubled = merge({t.view(), copy.view()});
  EXPECT_EQ(doubled.size(), 6u);
  EXPECT_EQ(doubled[1].timestamp.usec, 500u);
}

}  // namespace
}  // namespace netsample::trace
