#include "stats/gof.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/special.h"
#include "util/rng.h"

namespace netsample::stats {
namespace {

TEST(ChiSquaredTest, PerfectFitIsZero) {
  const std::vector<double> o = {10, 20, 30};
  const auto r = chi_squared_test(o, o);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.degrees_of_freedom, 2.0);
  EXPECT_DOUBLE_EQ(r.significance, 1.0);
  EXPECT_TRUE(r.expected_counts_adequate);
}

TEST(ChiSquaredTest, HandComputedStatistic) {
  // O = {8, 12}, E = {10, 10}: chi2 = 4/10 + 4/10 = 0.8, dof 1.
  const std::vector<double> o = {8, 12};
  const std::vector<double> e = {10, 10};
  const auto r = chi_squared_test(o, e);
  EXPECT_NEAR(r.statistic, 0.8, 1e-12);
  EXPECT_NEAR(r.significance, chi_squared_sf(0.8, 1), 1e-12);
}

TEST(ChiSquaredTest, FittedParametersReduceDof) {
  const std::vector<double> o = {8, 12, 9, 11};
  const std::vector<double> e = {10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(chi_squared_test(o, e, 0).degrees_of_freedom, 3.0);
  EXPECT_DOUBLE_EQ(chi_squared_test(o, e, 1).degrees_of_freedom, 2.0);
}

TEST(ChiSquaredTest, ZeroExpectedBinsAreSkipped) {
  const std::vector<double> o = {8, 12, 0};
  const std::vector<double> e = {10, 10, 0};
  const auto r = chi_squared_test(o, e);
  EXPECT_EQ(r.bins_used, 2u);
  EXPECT_NEAR(r.statistic, 0.8, 1e-12);
}

TEST(ChiSquaredTest, ObservationsInImpossibleBinExplode) {
  const std::vector<double> o = {8, 12, 5};
  const std::vector<double> e = {10, 10, 0};
  const auto r = chi_squared_test(o, e);
  EXPECT_GT(r.statistic, 1e10);
  EXPECT_NEAR(r.significance, 0.0, 1e-12);
}

TEST(ChiSquaredTest, SmallExpectedCountsFlagged) {
  const std::vector<double> o = {3, 12};
  const std::vector<double> e = {2, 13};
  EXPECT_FALSE(chi_squared_test(o, e).expected_counts_adequate);
}

TEST(ChiSquaredTest, ErrorsOnBadInput) {
  EXPECT_THROW((void)chi_squared_test(std::vector<double>{1.0},
                                      std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)chi_squared_test(std::vector<double>{1.0},
                                      std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(ChiSquaredTest, RejectionRateMatchesAlpha) {
  // Draw multinomial samples from the true distribution; the test should
  // reject at roughly the nominal rate.
  Rng rng(11);
  const std::vector<double> probs = {0.3, 0.3, 0.2, 0.2};
  int rejections = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> obs(probs.size(), 0.0);
    const int n = 500;
    for (int i = 0; i < n; ++i) {
      double u = rng.uniform01();
      for (std::size_t b = 0; b < probs.size(); ++b) {
        if (u < probs[b] || b + 1 == probs.size()) {
          obs[b] += 1.0;
          break;
        }
        u -= probs[b];
      }
    }
    std::vector<double> exp(probs.size());
    for (std::size_t b = 0; b < probs.size(); ++b) exp[b] = probs[b] * n;
    if (chi_squared_test(obs, exp).significance < 0.05) ++rejections;
  }
  // ~5% +- sampling noise.
  EXPECT_GE(rejections, 5);
  EXPECT_LE(rejections, 45);
}

TEST(KsTest, UniformDataAgainstUniformCdf) {
  Rng rng(3);
  std::vector<double> data;
  for (int i = 0; i < 2000; ++i) data.push_back(rng.uniform01());
  const auto r = ks_test(data, [](double x) {
    if (x < 0) return 0.0;
    if (x > 1) return 1.0;
    return x;
  });
  EXPECT_LT(r.statistic, 0.05);
  EXPECT_GT(r.significance, 0.01);
}

TEST(KsTest, DetectsWrongDistribution) {
  Rng rng(5);
  std::vector<double> data;
  for (int i = 0; i < 2000; ++i) data.push_back(rng.exponential(1.0));
  // Test exponential data against a uniform CDF on [0, 5]: should reject.
  const auto r = ks_test(data, [](double x) {
    if (x < 0) return 0.0;
    if (x > 5) return 1.0;
    return x / 5.0;
  });
  EXPECT_LT(r.significance, 1e-6);
}

TEST(KsTest, EmptyThrows) {
  EXPECT_THROW((void)ks_test({}, [](double) { return 0.5; }),
               std::invalid_argument);
}

TEST(KsTestTwoSample, SameDistributionAccepted) {
  Rng rng(7);
  std::vector<double> a, b;
  for (int i = 0; i < 1500; ++i) a.push_back(rng.normal());
  for (int i = 0; i < 1500; ++i) b.push_back(rng.normal());
  const auto r = ks_test_two_sample(a, b);
  EXPECT_GT(r.significance, 0.01);
}

TEST(KsTestTwoSample, DifferentDistributionsRejected) {
  Rng rng(9);
  std::vector<double> a, b;
  for (int i = 0; i < 1500; ++i) a.push_back(rng.normal(0.0, 1.0));
  for (int i = 0; i < 1500; ++i) b.push_back(rng.normal(1.0, 1.0));
  const auto r = ks_test_two_sample(a, b);
  EXPECT_LT(r.significance, 1e-6);
}

TEST(KsTestTwoSample, IdenticalSamplesHaveZeroStatistic) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const auto r = ks_test_two_sample(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
}

TEST(AndersonDarling, UniformDataAccepted) {
  Rng rng(13);
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back(rng.uniform01());
  const auto r = anderson_darling_test(data, [](double x) {
    if (x < 0) return 0.0;
    if (x > 1) return 1.0;
    return x;
  });
  EXPECT_LT(r.a_squared, 4.0);
  EXPECT_GT(r.significance, 0.001);
}

TEST(AndersonDarling, WrongDistributionRejected) {
  Rng rng(17);
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back(rng.uniform01() * 0.5);
  const auto r = anderson_darling_test(data, [](double x) {
    if (x < 0) return 0.0;
    if (x > 1) return 1.0;
    return x;
  });
  EXPECT_GT(r.a_squared, 10.0);
  EXPECT_LT(r.significance, 1e-6);
}

TEST(AndersonDarling, EmptyThrows) {
  EXPECT_THROW((void)anderson_darling_test({}, [](double) { return 0.5; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace netsample::stats
