#include "collector/backbone.h"

#include <gtest/gtest.h>

namespace netsample::collector {
namespace {

BackboneConfig default_config() { return BackboneConfig{}; }

TEST(BackboneSimulation, ValidatesConfig) {
  auto cfg = default_config();
  cfg.months = 0;
  EXPECT_THROW(BackboneSimulation{cfg}, std::invalid_argument);
  cfg = default_config();
  cfg.processor_capacity_pps = 0;
  EXPECT_THROW(BackboneSimulation{cfg}, std::invalid_argument);
  cfg = default_config();
  cfg.sampling_granularity = 0;
  EXPECT_THROW(BackboneSimulation{cfg}, std::invalid_argument);
}

TEST(BackboneSimulation, DeterministicInSeed) {
  const auto a = BackboneSimulation(default_config()).run();
  const auto b = BackboneSimulation(default_config()).run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].snmp_packets, b[i].snmp_packets);
    EXPECT_DOUBLE_EQ(a[i].categorized_estimate, b[i].categorized_estimate);
  }
}

TEST(BackboneSimulation, TrafficGrowsMonthOverMonth) {
  const auto r = BackboneSimulation(default_config()).run();
  EXPECT_GT(r.back().snmp_packets, 4.0 * r.front().snmp_packets);
}

TEST(BackboneSimulation, EarlyMonthsHaveNoDiscrepancy) {
  const auto r = BackboneSimulation(default_config()).run();
  EXPECT_LT(r[0].discrepancy_fraction, 0.02);
  EXPECT_LT(r[3].discrepancy_fraction, 0.02);
}

TEST(BackboneSimulation, DiscrepancyGrowsBeforeSamplingDeployment) {
  const auto cfg = default_config();
  const auto r = BackboneSimulation(cfg).run();
  const int pre = cfg.sampling_deploy_month - 1;
  // The month before sampling deployment shows a significant loss,
  // and it exceeds the loss two years earlier (Figure 1's widening gap).
  EXPECT_GT(r[pre].discrepancy_fraction, 0.10);
  EXPECT_GT(r[pre].discrepancy_fraction, r[pre - 24].discrepancy_fraction);
}

TEST(BackboneSimulation, SamplingDeploymentClosesTheGap) {
  const auto cfg = default_config();
  const auto r = BackboneSimulation(cfg).run();
  const int pre = cfg.sampling_deploy_month - 1;
  const int post = cfg.sampling_deploy_month;
  EXPECT_TRUE(r[post].sampling_active);
  EXPECT_FALSE(r[pre].sampling_active);
  EXPECT_LT(r[post].discrepancy_fraction, r[pre].discrepancy_fraction / 4.0);
  EXPECT_LT(r[post].discrepancy_fraction, 0.02);
}

TEST(BackboneSimulation, NeverDeployingSamplingKeepsLosing) {
  auto cfg = default_config();
  cfg.sampling_deploy_month = -1;
  const auto r = BackboneSimulation(cfg).run();
  EXPECT_FALSE(r.back().sampling_active);
  EXPECT_GT(r.back().discrepancy_fraction, 0.3);
}

TEST(BackboneSimulation, SnmpAlwaysMatchesOfferedLoad) {
  const auto r = BackboneSimulation(default_config()).run();
  for (const auto& m : r) {
    EXPECT_DOUBLE_EQ(m.snmp_packets, m.offered_packets);
    EXPECT_LE(m.categorized_estimate, m.snmp_packets * 1.0000001);
  }
}

TEST(BackboneSimulation, HigherCapacityDelaysTheGap) {
  auto cfg = default_config();
  cfg.sampling_deploy_month = -1;
  const auto low = BackboneSimulation(cfg).run();
  cfg.processor_capacity_pps *= 4.0;
  const auto high = BackboneSimulation(cfg).run();
  const std::size_t mid = low.size() / 2;
  EXPECT_GT(low[mid].discrepancy_fraction, high[mid].discrepancy_fraction);
}

TEST(MonthLabel, FormatsCalendarMonths) {
  EXPECT_EQ(month_label(0), "Jan 89");
  EXPECT_EQ(month_label(11), "Dec 89");
  EXPECT_EQ(month_label(12), "Jan 90");
  EXPECT_EQ(month_label(32), "Sep 91");
}

}  // namespace
}  // namespace netsample::collector
