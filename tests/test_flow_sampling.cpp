// Flow-workload differential and property suite.
//
// The flow sweep's headline contract is that `netsample flows --sweep` is
// byte-identical across --jobs, --workers, and SIMD variants. That rests on
// three layered properties, each pinned here:
//
//   (1) the index-emitting kernels and the streaming samplers select the
//       SAME packets, so a SampledFlowTable fed either way produces the
//       same finished records (all five methods, both fed-path variants);
//   (2) the table itself is a pure function of the offered packet sequence
//       — LRU eviction and expiry batches are deterministic, never
//       hash-iteration-ordered;
//   (3) the per-cell scoring is schedule-independent: a ParallelRunner
//       sweep over flow cells returns bit-identical metrics at any --jobs.
//
// Plus the memory-pressure property: a capped table splits flows but never
// loses packets — per-key merged totals match the uncapped table exactly.
#include "flow/sampled_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/samplers.h"
#include "core/select_indices.h"
#include "core/simd/simd.h"
#include "exper/experiment.h"
#include "exper/parallel.h"
#include "exper/runner.h"
#include "flow/size_dist.h"
#include "flow/sweep.h"
#include "synth/model.h"
#include "synth/presets.h"

namespace netsample::flow {
namespace {

constexpr MicroDuration kTimeout = MicroDuration::from_seconds(30);

/// Shared heavy-tailed fixture: one flow-mix trace, built once.
class FlowSamplingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::TraceModel model(synth::flow_mix_minutes_config(2.0, 23));
    ex_ = new exper::Experiment(model.generate());
  }
  static void TearDownTestSuite() {
    delete ex_;
    ex_ = nullptr;
  }
  static exper::Experiment* ex_;
};

exper::Experiment* FlowSamplingTest::ex_ = nullptr;

std::vector<trace::FlowRecord> records_from_indices(
    trace::TraceView view, const std::vector<std::size_t>& idx,
    std::size_t capacity) {
  SampledFlowTable table(kTimeout, capacity);
  for (std::size_t i : idx) table.offer(view[i]);
  table.flush();
  return table.records();
}

exper::CellConfig flow_cell_config(const exper::Experiment& ex,
                                   core::Method method, std::uint64_t k) {
  exper::CellConfig cfg;
  cfg.method = method;
  cfg.target = core::Target::kPacketSize;
  cfg.granularity = k;
  cfg.interval = ex.interval(60.0);
  cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
  cfg.replications = 2;
  cfg.base_seed = 45;
  cfg.cache = &ex.binned_cache();
  return cfg;
}

const core::Method kAllMethods[] = {
    core::Method::kSystematicCount, core::Method::kStratifiedCount,
    core::Method::kSimpleRandom, core::Method::kSystematicTimer,
    core::Method::kStratifiedTimer};

// (1) Kernel-fed and streaming-fed tables agree record-for-record. The
// streaming hierarchy is the oracle (same contract select_indices is pinned
// to in test_select_indices.cpp); identical index sets MUST give identical
// records because the table is offered the same packets in the same order.
TEST_F(FlowSamplingTest, KernelFedMatchesStreamingFedRecords) {
  const auto& cache = ex_->binned_cache();
  for (const auto method : kAllMethods) {
    for (const std::uint64_t k : {std::uint64_t{8}, std::uint64_t{64}}) {
      const auto cfg = flow_cell_config(*ex_, method, k);
      const std::size_t begin = cache.offset_of(cfg.interval);
      const std::size_t end = begin + cfg.interval.size();
      for (int r = 0; r < cfg.replications; ++r) {
        const core::SamplerSpec spec = exper::replication_spec(cfg, r);
        const auto kernel_idx = core::select_indices(spec, cache, begin, end);
        auto sampler = core::make_sampler(spec);
        const auto stream_idx =
            core::draw_sample_indices(cfg.interval, *sampler);
        ASSERT_EQ(kernel_idx, stream_idx)
            << core::method_name(method) << " k=" << k << " r=" << r;
        EXPECT_EQ(records_from_indices(cfg.interval, kernel_idx, 0),
                  records_from_indices(cfg.interval, stream_idx, 0))
            << core::method_name(method) << " k=" << k << " r=" << r;
      }
    }
  }
}

// (1b) SIMD variants cannot change which packets feed the table. Runs the
// selection under forced-scalar and under the machine's best variant; both
// the index sets and the finished records must be identical. On scalar-only
// machines this degenerates to scalar-vs-scalar, which is fine: the test
// then pins that force/clear round-trips cleanly.
TEST_F(FlowSamplingTest, SimdVariantsFeedIdenticalRecords) {
  struct VariantGuard {
    explicit VariantGuard(core::simd::Variant v) {
      core::simd::force_variant(v);
    }
    ~VariantGuard() { core::simd::clear_variant_override(); }
  };
  const auto& cache = ex_->binned_cache();
  for (const auto method : kAllMethods) {
    const auto cfg = flow_cell_config(*ex_, method, 16);
    const std::size_t begin = cache.offset_of(cfg.interval);
    const std::size_t end = begin + cfg.interval.size();
    const core::SamplerSpec spec = exper::replication_spec(cfg, 0);

    std::vector<std::size_t> scalar_idx;
    {
      VariantGuard g(core::simd::Variant::kScalar);
      scalar_idx = core::select_indices(spec, cache, begin, end);
    }
    std::vector<std::size_t> best_idx;
    {
      VariantGuard g(core::simd::best_variant());
      best_idx = core::select_indices(spec, cache, begin, end);
    }
    ASSERT_EQ(scalar_idx, best_idx) << core::method_name(method);
    EXPECT_EQ(records_from_indices(cfg.interval, scalar_idx, 0),
              records_from_indices(cfg.interval, best_idx, 0))
        << core::method_name(method);
  }
}

// (3) A flow sweep through the ParallelRunner returns bit-identical metrics
// at --jobs 1 and --jobs 4. The cell_runner hook routes every cell through
// flow::run_flow_cell; seeds are coordinate-derived, so the schedule cannot
// leak into the results.
TEST_F(FlowSamplingTest, ParallelRunnerJobsEquivalence) {
  std::vector<exper::GridTask> tasks;
  for (const auto method :
       {core::Method::kSystematicCount, core::Method::kSimpleRandom,
        core::Method::kStratifiedTimer}) {
    for (const std::uint64_t k : {std::uint64_t{10}, std::uint64_t{100}}) {
      exper::GridTask t;
      t.config = flow_cell_config(*ex_, method, k);
      t.config.replications = 3;
      tasks.push_back(t);
    }
  }
  const FlowParams params;
  exper::RunOptions opts;
  opts.on_error = exper::FailPolicy::kSkip;
  opts.cell_runner = [&params](const exper::CellConfig& cfg,
                               std::size_t index) {
    return run_flow_cell(cfg, params,
                         index % 2 == 0 ? Estimator::kTailRescale
                                        : Estimator::kEm);
  };

  const auto r1 = exper::ParallelRunner(1).run(tasks, 45, opts);
  const auto r4 = exper::ParallelRunner(4).run(tasks, 45, opts);
  ASSERT_EQ(r1.cells.size(), tasks.size());
  ASSERT_EQ(r4.cells.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ASSERT_TRUE(r1.cells[i].status.is_ok()) << i;
    ASSERT_TRUE(r4.cells[i].status.is_ok()) << i;
    const auto& a = r1.cells[i].result.replications;
    const auto& b = r4.cells[i].result.replications;
    ASSERT_EQ(a.size(), b.size()) << i;
    for (std::size_t r = 0; r < a.size(); ++r) {
      // Bit-identical, not within-epsilon: EXPECT_EQ on doubles.
      EXPECT_EQ(a[r].chi2, b[r].chi2) << i << "/" << r;
      EXPECT_EQ(a[r].phi, b[r].phi) << i << "/" << r;
      EXPECT_EQ(a[r].significance, b[r].significance) << i << "/" << r;
      EXPECT_EQ(a[r].avg_norm_dev, b[r].avg_norm_dev) << i << "/" << r;
      EXPECT_EQ(a[r].sample_n, b[r].sample_n) << i << "/" << r;
    }
  }
}

// Memory pressure: a capped table evicts live flows early — splitting them
// into multiple records — but conserves every offered packet and byte. The
// per-key totals of the capped table, merged across splits, must equal the
// uncapped table's exactly.
TEST_F(FlowSamplingTest, CappedTableConservesPacketsUnderEviction) {
  const auto cfg =
      flow_cell_config(*ex_, core::Method::kSystematicCount, 4);
  const auto& cache = ex_->binned_cache();
  const std::size_t begin = cache.offset_of(cfg.interval);
  const core::SamplerSpec spec = exper::replication_spec(cfg, 0);
  const auto idx = core::select_indices(spec, cache, begin,
                                        begin + cfg.interval.size());

  SampledFlowTable uncapped(kTimeout, 0);
  SampledFlowTable capped(kTimeout, 16);
  for (std::size_t i : idx) {
    uncapped.offer(cfg.interval[i]);
    capped.offer(cfg.interval[i]);
  }
  uncapped.flush();
  capped.flush();

  ASSERT_GT(capped.stats().evictions, 0u) << "cap too large to exercise";
  EXPECT_EQ(capped.stats().packets_offered, uncapped.stats().packets_offered);
  // Evicted flows that receive further packets split into extra records;
  // the count can only grow under pressure, never shrink.
  EXPECT_GE(capped.records().size(), uncapped.records().size());

  using Totals = std::pair<std::uint64_t, std::uint64_t>;  // packets, bytes
  const auto merge = [](const std::vector<trace::FlowRecord>& recs) {
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint16_t,
                        std::uint16_t, std::uint8_t>,
             Totals>
        m;
    for (const auto& f : recs) {
      auto& t = m[{f.key.src.value(), f.key.dst.value(), f.key.src_port,
                   f.key.dst_port, f.key.protocol}];
      t.first += f.packets;
      t.second += f.bytes;
    }
    return m;
  };
  EXPECT_EQ(merge(capped.records()), merge(uncapped.records()));
}

// ---- SampledFlowTable unit behaviors ----

trace::PacketRecord packet(std::uint64_t usec, std::uint16_t src_port,
                           std::uint16_t size = 100) {
  trace::PacketRecord p;
  p.timestamp = MicroTime{usec};
  p.size = size;
  p.protocol = 6;
  p.src = net::Ipv4Address(10, 0, 0, 1);
  p.dst = net::Ipv4Address(10, 0, 0, 2);
  p.src_port = src_port;
  p.dst_port = 80;
  return p;
}

TEST(SampledFlowTable, RejectsBadConstruction) {
  EXPECT_THROW(SampledFlowTable(MicroDuration{0}, 0), std::invalid_argument);
  EXPECT_THROW(SampledFlowTable(MicroDuration{-5}, 0), std::invalid_argument);
}

TEST(SampledFlowTable, RejectsTimeTravel) {
  SampledFlowTable t(kTimeout, 0);
  t.offer(packet(1000, 1));
  EXPECT_THROW(t.offer(packet(999, 1)), std::invalid_argument);
}

TEST(SampledFlowTable, IdleTimeoutSplitsFlow) {
  SampledFlowTable t(kTimeout, 0);
  t.offer(packet(0, 1));
  t.offer(packet(1000, 1));
  // Same 5-tuple, but a gap past the idle timeout: a second flow record.
  t.offer(packet(1000 + 31 * 1'000'000, 1));
  t.flush();
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].packets, 2u);
  EXPECT_EQ(t.records()[1].packets, 1u);
  EXPECT_EQ(t.stats().idle_expiries, 1u);
  EXPECT_EQ(t.stats().evictions, 0u);
}

TEST(SampledFlowTable, EvictsLeastRecentlySeenFlow) {
  SampledFlowTable t(kTimeout, 2);
  t.offer(packet(0, 1));    // flow A
  t.offer(packet(10, 2));   // flow B
  t.offer(packet(20, 1));   // A touched again -> B is now LRU
  t.offer(packet(30, 3));   // flow C: table full, evicts B
  t.flush();
  ASSERT_EQ(t.records().size(), 3u);
  // The eviction is emitted at its logical time, before the flush batch.
  EXPECT_EQ(t.records()[0].key.src_port, 2);
  EXPECT_EQ(t.stats().evictions, 1u);
  // Flush batch is sorted by (first_seen, 5-tuple): A then C.
  EXPECT_EQ(t.records()[1].key.src_port, 1);
  EXPECT_EQ(t.records()[2].key.src_port, 3);
}

TEST(SampledFlowTable, StatsCountersAreExact) {
  SampledFlowTable t(kTimeout, 2);
  t.offer(packet(0, 1));
  t.offer(packet(10, 2));
  t.offer(packet(20, 3));                       // evicts flow 1
  t.offer(packet(40 * 1'000'000, 4));           // expires flows 2 and 3
  t.flush();
  const auto s = t.stats();
  EXPECT_EQ(s.packets_offered, 4u);
  EXPECT_EQ(s.flows_finished, 4u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.idle_expiries, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

// ---- SizeDist / binning unit behaviors ----

TEST(SizeDist, AggregatesAndTruncates) {
  SizeDist d;
  d.add(1, 3.0);
  d.add(4, 2.0);
  d.add(4, 1.0);
  d.add(0, 7.0);  // size-0 flows do not exist; ignored
  EXPECT_EQ(d.count(4), 3.0);
  EXPECT_EQ(d.total_flows(), 6.0);
  EXPECT_EQ(d.total_packets(), 3.0 + 12.0);
  EXPECT_EQ(d.max_size(), 4u);
  EXPECT_EQ(d.tail_flows(2), 3.0);
  const SizeDist t = d.truncated_below(2);
  EXPECT_EQ(t.count(1), 0.0);
  EXPECT_EQ(t.count(4), 3.0);
}

TEST(SizeDist, BinsAreExactThenGeometricAndCoverEverything) {
  const auto bins = flow_size_bins(10'000);
  ASSERT_GE(bins.size(), 10u);
  for (std::uint64_t s = 1; s <= 8; ++s) EXPECT_EQ(bins[s - 1], s);
  for (std::size_t i = 1; i < bins.size(); ++i) {
    EXPECT_GT(bins[i], bins[i - 1]);
  }
  EXPECT_LE(bins.back(), 10'000u);

  SizeDist d;
  d.add(1, 1.0);
  d.add(9'999, 2.0);
  d.add(123, 4.0);
  const auto c = bin_counts(d, bins);
  double total = 0;
  for (double x : c) total += x;
  EXPECT_EQ(total, d.total_flows());  // nothing falls off either end
}

}  // namespace
}  // namespace netsample::flow
