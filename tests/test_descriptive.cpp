#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace netsample::stats {
namespace {

TEST(MomentAccumulator, EmptyIsZero) {
  MomentAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.population_variance(), 0.0);
}

TEST(MomentAccumulator, SingleValue) {
  MomentAccumulator acc;
  acc.add(7.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 7.0);
  EXPECT_DOUBLE_EQ(acc.min(), 7.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.0);
  EXPECT_DOUBLE_EQ(acc.population_variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.sample_variance(), 0.0);
}

TEST(MomentAccumulator, KnownSmallDataSet) {
  // Data: 2, 4, 4, 4, 5, 5, 7, 9 -- classic example with mean 5, pop sd 2.
  MomentAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.population_stddev(), 2.0);
  EXPECT_NEAR(acc.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(MomentAccumulator, SymmetricDataHasZeroSkew) {
  MomentAccumulator acc;
  for (double x : {-2.0, -1.0, 0.0, 1.0, 2.0}) acc.add(x);
  EXPECT_NEAR(acc.skewness(), 0.0, 1e-12);
}

TEST(MomentAccumulator, KurtosisOfTwoPointDistributionIsOne) {
  // {-1, 1} repeated: m4/m2^2 == 1, the minimum possible kurtosis.
  MomentAccumulator acc;
  for (int i = 0; i < 100; ++i) {
    acc.add(-1.0);
    acc.add(1.0);
  }
  EXPECT_NEAR(acc.kurtosis(), 1.0, 1e-12);
}

TEST(MomentAccumulator, GaussianSkewKurtosis) {
  Rng rng(99);
  MomentAccumulator acc;
  for (int i = 0; i < 400000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.skewness(), 0.0, 0.02);
  EXPECT_NEAR(acc.kurtosis(), 3.0, 0.05);
}

TEST(MomentAccumulator, ExponentialSkewIsTwo) {
  Rng rng(7);
  MomentAccumulator acc;
  for (int i = 0; i < 500000; ++i) acc.add(rng.exponential(1.0));
  EXPECT_NEAR(acc.skewness(), 2.0, 0.1);
}

TEST(MomentAccumulator, MergeEqualsSequential) {
  Rng rng(5);
  MomentAccumulator whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    whole.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.population_variance(), whole.population_variance(), 1e-9);
  EXPECT_NEAR(a.skewness(), whole.skewness(), 1e-9);
  EXPECT_NEAR(a.kurtosis(), whole.kurtosis(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(MomentAccumulator, MergeWithEmptyIsIdentity) {
  MomentAccumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  MomentAccumulator b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(MomentAccumulator, NumericallyStableForLargeOffsets) {
  MomentAccumulator acc;
  for (int i = 0; i < 1000; ++i) acc.add(1e9 + (i % 2));
  EXPECT_NEAR(acc.population_variance(), 0.25, 1e-6);
}

TEST(QuantileSorted, ExactOrderStatistics) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.0);
}

TEST(QuantileSorted, LinearInterpolation) {
  const std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.5);
}

TEST(QuantileSorted, EmptyThrows) {
  EXPECT_THROW((void)quantile_sorted({}, 0.5), std::invalid_argument);
}

TEST(QuantileSorted, ClampsOutOfRangeQ) {
  const std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.5), 3.0);
}

TEST(Quantiles, MultipleAtOnce) {
  const std::vector<double> data = {5, 1, 4, 2, 3};  // unsorted on purpose
  const std::vector<double> qs = {0.0, 0.5, 1.0};
  const auto r = quantiles(data, qs);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
  EXPECT_DOUBLE_EQ(r[2], 5.0);
}

TEST(Summarize, FullLayout) {
  std::vector<double> data;
  for (int i = 1; i <= 100; ++i) data.push_back(static_cast<double>(i));
  const auto s = summarize(data);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.q1, 25.75, 1e-12);
  EXPECT_NEAR(s.q3, 75.25, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt((100.0 * 100.0 - 1.0) / 12.0), 1e-9);
}

TEST(Summarize, EmptyDataGivesZeroSummary) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace netsample::stats
