#include "net/ports.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace netsample::net {
namespace {

TEST(WellKnownPorts, RegistryIsSortedAndNonEmpty) {
  const auto ports = well_known_ports();
  ASSERT_FALSE(ports.empty());
  EXPECT_TRUE(std::is_sorted(
      ports.begin(), ports.end(),
      [](const WellKnownPort& a, const WellKnownPort& b) { return a.port < b.port; }));
}

TEST(WellKnownPorts, EraServicesPresent) {
  EXPECT_EQ(well_known_port_name(23).value_or(""), "telnet");
  EXPECT_EQ(well_known_port_name(21).value_or(""), "ftp");
  EXPECT_EQ(well_known_port_name(20).value_or(""), "ftp-data");
  EXPECT_EQ(well_known_port_name(25).value_or(""), "smtp");
  EXPECT_EQ(well_known_port_name(53).value_or(""), "domain");
  EXPECT_EQ(well_known_port_name(119).value_or(""), "nntp");
  EXPECT_EQ(well_known_port_name(161).value_or(""), "snmp");
}

TEST(WellKnownPorts, UnknownPortsReturnNullopt) {
  EXPECT_FALSE(well_known_port_name(0).has_value());
  EXPECT_FALSE(well_known_port_name(1024).has_value());
  EXPECT_FALSE(well_known_port_name(65535).has_value());
  EXPECT_FALSE(is_well_known_port(6000));
}

TEST(ServicePort, PicksTheWellKnownEnd) {
  EXPECT_EQ(service_port(1025, 23).value_or(0), 23);
  EXPECT_EQ(service_port(23, 1025).value_or(0), 23);
}

TEST(ServicePort, BothWellKnownPicksLower) {
  EXPECT_EQ(service_port(53, 123).value_or(0), 53);
  EXPECT_EQ(service_port(123, 53).value_or(0), 53);
}

TEST(ServicePort, NeitherWellKnownIsNullopt) {
  EXPECT_FALSE(service_port(1025, 2048).has_value());
}

}  // namespace
}  // namespace netsample::net
