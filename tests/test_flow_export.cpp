#include "trace/flow_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "synth/presets.h"

namespace netsample::trace {
namespace {

std::vector<FlowRecord> sample_records() {
  FlowRecord a;
  a.key = {net::Ipv4Address(132, 249, 1, 5), net::Ipv4Address(192, 203, 230, 10),
           1025, 23, 6};
  a.first_seen = MicroTime{1000};
  a.last_seen = MicroTime{900000};
  a.packets = 42;
  a.bytes = 9001;
  a.saw_syn = true;

  FlowRecord b;
  b.key = {net::Ipv4Address(132, 249, 9, 9), net::Ipv4Address(128, 32, 1, 1),
           2001, 53, 17};
  b.first_seen = MicroTime{5000};
  b.last_seen = MicroTime{5000};
  b.packets = 1;
  b.bytes = 76;
  b.saw_fin = false;
  return {a, b};
}

TEST(FlowExport, SerializeParseRoundTrip) {
  const auto records = sample_records();
  const auto bytes = serialize_flows(records);
  const auto parsed = parse_flows(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*parsed)[i].key, records[i].key);
    EXPECT_EQ((*parsed)[i].first_seen, records[i].first_seen);
    EXPECT_EQ((*parsed)[i].last_seen, records[i].last_seen);
    EXPECT_EQ((*parsed)[i].packets, records[i].packets);
    EXPECT_EQ((*parsed)[i].bytes, records[i].bytes);
    EXPECT_EQ((*parsed)[i].saw_syn, records[i].saw_syn);
    EXPECT_EQ((*parsed)[i].saw_fin, records[i].saw_fin);
  }
}

TEST(FlowExport, EmptyListRoundTrips) {
  const auto bytes = serialize_flows({});
  const auto parsed = parse_flows(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(FlowExport, RejectsBadMagic) {
  auto bytes = serialize_flows(sample_records());
  bytes[0] = 'X';
  const auto parsed = parse_flows(bytes);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlowExport, RejectsWrongVersion) {
  auto bytes = serialize_flows(sample_records());
  bytes[4] = 99;
  EXPECT_EQ(parse_flows(bytes).status().code(), StatusCode::kUnimplemented);
}

TEST(FlowExport, RejectsTruncation) {
  auto bytes = serialize_flows(sample_records());
  bytes.resize(bytes.size() - 1);
  EXPECT_EQ(parse_flows(bytes).status().code(), StatusCode::kDataLoss);
  bytes.resize(8);
  EXPECT_EQ(parse_flows(bytes).status().code(), StatusCode::kDataLoss);
}

TEST(FlowExport, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "netsample_flows.nsfe").string();
  const auto records = sample_records();
  ASSERT_TRUE(write_flows(path, records).is_ok());
  const auto loaded = read_flows(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), records.size());
  std::remove(path.c_str());
}

TEST(FlowExport, MissingFileFails) {
  EXPECT_EQ(read_flows("/nonexistent/flows.nsfe").status().code(),
            StatusCode::kNotFound);
}

TEST(FlowExport, EndToEndFromFlowTable) {
  // Assemble flows from synthetic traffic, export, reload, and compare the
  // aggregate statistics.
  synth::TraceModel model(synth::sdsc_minutes_config(0.5, 13));
  const auto t = model.generate();
  FlowTable table(MicroDuration::from_seconds(30));
  table.run(t.view());

  const auto bytes = serialize_flows(table.expired());
  const auto parsed = parse_flows(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), table.expired().size());
  std::uint64_t packets = 0;
  for (const auto& f : *parsed) packets += f.packets;
  EXPECT_EQ(packets, t.size());
}

}  // namespace
}  // namespace netsample::trace
