#include "trace/flow_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "synth/presets.h"

namespace netsample::trace {
namespace {

std::vector<FlowRecord> sample_records() {
  FlowRecord a;
  a.key = {net::Ipv4Address(132, 249, 1, 5), net::Ipv4Address(192, 203, 230, 10),
           1025, 23, 6};
  a.first_seen = MicroTime{1000};
  a.last_seen = MicroTime{900000};
  a.packets = 42;
  a.bytes = 9001;
  a.saw_syn = true;

  FlowRecord b;
  b.key = {net::Ipv4Address(132, 249, 9, 9), net::Ipv4Address(128, 32, 1, 1),
           2001, 53, 17};
  b.first_seen = MicroTime{5000};
  b.last_seen = MicroTime{5000};
  b.packets = 1;
  b.bytes = 76;
  b.saw_fin = false;
  return {a, b};
}

TEST(FlowExport, SerializeParseRoundTrip) {
  const auto records = sample_records();
  const auto bytes = serialize_flows(records);
  const auto parsed = parse_flows(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*parsed)[i].key, records[i].key);
    EXPECT_EQ((*parsed)[i].first_seen, records[i].first_seen);
    EXPECT_EQ((*parsed)[i].last_seen, records[i].last_seen);
    EXPECT_EQ((*parsed)[i].packets, records[i].packets);
    EXPECT_EQ((*parsed)[i].bytes, records[i].bytes);
    EXPECT_EQ((*parsed)[i].saw_syn, records[i].saw_syn);
    EXPECT_EQ((*parsed)[i].saw_fin, records[i].saw_fin);
  }
}

TEST(FlowExport, EmptyListRoundTrips) {
  const auto bytes = serialize_flows({});
  const auto parsed = parse_flows(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(FlowExport, RejectsBadMagic) {
  auto bytes = serialize_flows(sample_records());
  bytes[0] = 'X';
  const auto parsed = parse_flows(bytes);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlowExport, RejectsWrongVersion) {
  auto bytes = serialize_flows(sample_records());
  bytes[4] = 99;
  EXPECT_EQ(parse_flows(bytes).status().code(), StatusCode::kUnimplemented);
}

TEST(FlowExport, RejectsTruncation) {
  auto bytes = serialize_flows(sample_records());
  bytes.resize(bytes.size() - 1);
  EXPECT_EQ(parse_flows(bytes).status().code(), StatusCode::kDataLoss);
  bytes.resize(8);
  EXPECT_EQ(parse_flows(bytes).status().code(), StatusCode::kDataLoss);
}

// EVERY proper prefix of a valid file must be rejected as data loss (or,
// below 5 bytes, before the version/magic fields are even complete, still
// never accepted). A collector that dies mid-write must not yield a
// silently-short flow list.
TEST(FlowExport, RejectsEveryTruncatedPrefix) {
  const auto bytes = serialize_flows(sample_records());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + n);
    const auto parsed = parse_flows(prefix);
    ASSERT_FALSE(parsed.has_value()) << "accepted prefix of " << n << " bytes";
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss)
        << "prefix length " << n;
  }
}

// A header count that disagrees with the payload length is data loss in
// both directions: count too high (payload short) and count too low
// (trailing bytes). Either way the record stream cannot be trusted.
TEST(FlowExport, RejectsCountPayloadMismatch) {
  const auto patch_count = [](std::vector<std::uint8_t> bytes,
                              std::uint64_t count) {
    for (int i = 0; i < 8; ++i) {
      bytes[8 + i] = static_cast<std::uint8_t>(count >> (8 * i));
    }
    return bytes;
  };
  const auto bytes = serialize_flows(sample_records());  // count = 2

  EXPECT_EQ(parse_flows(patch_count(bytes, 3)).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(parse_flows(patch_count(bytes, 1)).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(parse_flows(patch_count(bytes, 0)).status().code(),
            StatusCode::kDataLoss);
  // Adversarial counts near 2^64: count * record-size would wrap a naive
  // 64-bit multiply right past the truncation check. The parser must
  // reject these, not crash or accept.
  EXPECT_EQ(
      parse_flows(patch_count(bytes, 0xFFFF'FFFF'FFFF'FFFFULL)).status().code(),
      StatusCode::kDataLoss);
  EXPECT_EQ(
      parse_flows(patch_count(bytes, (1ULL << 60) + 1)).status().code(),
      StatusCode::kDataLoss);

  // Trailing garbage after the declared records is also a mismatch.
  auto extra = bytes;
  extra.push_back(0xAB);
  EXPECT_EQ(parse_flows(extra).status().code(), StatusCode::kDataLoss);
}

// Version skew is kUnimplemented (exit-70 class), distinct from corruption:
// the file may be fine, this reader just cannot decode it.
TEST(FlowExport, RejectsVersionSkewDistinctly) {
  for (const std::uint16_t version : {std::uint16_t{0}, std::uint16_t{2},
                                      std::uint16_t{0x7FFF}}) {
    auto bytes = serialize_flows(sample_records());
    bytes[4] = static_cast<std::uint8_t>(version & 0xFF);
    bytes[5] = static_cast<std::uint8_t>(version >> 8);
    const auto parsed = parse_flows(bytes);
    ASSERT_FALSE(parsed.has_value()) << "version " << version;
    EXPECT_EQ(parsed.status().code(), StatusCode::kUnimplemented)
        << "version " << version;
  }
}

TEST(FlowExport, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "netsample_flows.nsfe").string();
  const auto records = sample_records();
  ASSERT_TRUE(write_flows(path, records).is_ok());
  const auto loaded = read_flows(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), records.size());
  std::remove(path.c_str());
}

TEST(FlowExport, MissingFileFails) {
  EXPECT_EQ(read_flows("/nonexistent/flows.nsfe").status().code(),
            StatusCode::kNotFound);
}

TEST(FlowExport, EndToEndFromFlowTable) {
  // Assemble flows from synthetic traffic, export, reload, and compare the
  // aggregate statistics.
  synth::TraceModel model(synth::sdsc_minutes_config(0.5, 13));
  const auto t = model.generate();
  FlowTable table(MicroDuration::from_seconds(30));
  table.run(t.view());

  const auto bytes = serialize_flows(table.expired());
  const auto parsed = parse_flows(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), table.expired().size());
  std::uint64_t packets = 0;
  for (const auto& f : *parsed) packets += f.packets;
  EXPECT_EQ(packets, t.size());
}

}  // namespace
}  // namespace netsample::trace
