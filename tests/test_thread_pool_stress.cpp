// ThreadPool failure-mode stress: exceptions interleaved with healthy work
// at saturation, destruction racing a deep queue, and workers racing a
// CancelToken being cancelled from outside. The suite name keeps these in
// CI's TSan net alongside the other ThreadPool tests.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/cancel.h"

namespace netsample {
namespace {

TEST(ThreadPoolStress, ThrowingTasksInterleavedWithHealthyOnes) {
  util::ThreadPool pool(4);
  constexpr int kTasks = 400;
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i]() -> int {
      if (i % 3 == 0) throw std::runtime_error("task " + std::to_string(i));
      return i;
    }));
  }
  int ok = 0, threw = 0;
  for (int i = 0; i < kTasks; ++i) {
    try {
      EXPECT_EQ(futures[i].get(), i);
      ++ok;
    } catch (const std::runtime_error&) {
      ++threw;
      EXPECT_EQ(i % 3, 0);
    }
  }
  EXPECT_EQ(threw, kTasks / 3 + 1);
  EXPECT_EQ(ok, kTasks - threw);
  // Every worker survived the exception storm.
  auto after = pool.submit([]() { return 99; });
  EXPECT_EQ(after.get(), 99);
}

TEST(ThreadPoolStress, DestructionWithThrowingTasksMidQueue) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 128; ++i) {
      futures.push_back(pool.submit([i, &executed]() {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (i % 5 == 0) throw std::runtime_error("mid-queue failure");
      }));
    }
    // Destructor drains the queue while some tasks are throwing.
  }
  EXPECT_EQ(executed.load(), 128);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (i % 5 == 0) {
      EXPECT_THROW(futures[i].get(), std::runtime_error);
    } else {
      EXPECT_NO_THROW(futures[i].get());
    }
  }
}

TEST(ThreadPoolStress, CancellationRace) {
  // Workers hammer cancel_requested() while an outside thread cancels:
  // under TSan this proves the token's flag and parent chain are race-free.
  util::CancelToken sweep;
  util::ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int t = 0; t < 16; ++t) {
    futures.push_back(pool.submit([&sweep]() {
      util::CancelToken local;
      local.link_parent(&sweep);
      int polls = 0;
      while (!local.cancel_requested()) {
        ++polls;
        std::this_thread::yield();
      }
      return polls;
    }));
  }
  std::thread canceller([&sweep]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    sweep.cancel();
  });
  for (auto& f : futures) EXPECT_GE(f.get(), 0);
  canceller.join();
  EXPECT_TRUE(sweep.cancel_requested());
}

TEST(ThreadPoolStress, CancelledSweepStillDrainsFutures) {
  // Cancellation must never wedge collection: tasks that observe the cancel
  // return promptly and every future becomes ready.
  util::CancelToken sweep;
  util::ThreadPool pool(2);
  std::vector<std::future<bool>> futures;
  for (int t = 0; t < 64; ++t) {
    futures.push_back(pool.submit([&sweep]() {
      return sweep.cancel_requested();
    }));
  }
  sweep.cancel();
  int cancelled_seen = 0;
  for (auto& f : futures) cancelled_seen += f.get() ? 1 : 0;
  // At least the tasks queued behind the cancel observed it.
  EXPECT_GE(cancelled_seen, 0);
}

}  // namespace
}  // namespace netsample
