// Property test pinning the two binning implementations together: for 10^6
// seeded random (size, interarrival) pairs, an obs::HistogramMetric laid
// out with the paper's bin edges must report exactly the same per-bin
// counts as the BinnedTraceCache prefix tables over the same packets.
// Both delegate to stats::Histogram::bin_index, so a drift in either layer
// (edge semantics, off-by-one in the prefix sums, a lost atomic update)
// shows up as a count mismatch here.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/targets.h"
#include "core/trace_cache.h"
#include "obs/metrics.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace netsample {
namespace {

constexpr std::size_t kPairs = 1'000'000;

/// 10^6 packets with uniformly random sizes straddling the paper's size
/// edges {41, 181} and gaps straddling the interarrival edges
/// {800, 1200, 2400, 3600} usec.
trace::Trace random_trace(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<trace::PacketRecord> packets;
  packets.reserve(kPairs);
  std::uint64_t now = 0;
  for (std::size_t i = 0; i < kPairs; ++i) {
    trace::PacketRecord p;
    p.timestamp = MicroTime(now);
    p.size = static_cast<std::uint16_t>(rng.uniform_in(1, 1500));
    packets.push_back(p);
    now += rng.uniform_below(8000);  // gaps 0..7999 usec, next packet's iat
  }
  return trace::Trace(std::move(packets));
}

TEST(ObsBinning, HistogramMetricAgreesWithBinnedTraceCacheOnAMillionPairs) {
  if (!obs::detail::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (NETSAMPLE_OBS=OFF)";
  }
  const trace::Trace t = random_trace(20260807);
  const core::BinnedTraceCache cache(t.view());
  ASSERT_EQ(cache.size(), kPairs);

  obs::registry().reset();
  obs::set_enabled(true);
  obs::HistogramMetric& size_hist = obs::registry().histogram(
      "test_binning_size", core::paper_bin_edges(core::Target::kPacketSize));
  obs::HistogramMetric& gap_hist = obs::registry().histogram(
      "test_binning_gap",
      core::paper_bin_edges(core::Target::kInterarrivalTime));
  size_hist.reset();
  gap_hist.reset();

  const auto view = t.view();
  for (std::size_t i = 0; i < kPairs; ++i) {
    size_hist.observe(static_cast<double>(view[i].size));
    if (i > 0) {
      gap_hist.observe(static_cast<double>(view[i].timestamp.usec -
                                           view[i - 1].timestamp.usec));
    }
  }
  obs::set_enabled(false);

  const stats::Histogram size_pop =
      cache.population_histogram(core::Target::kPacketSize, 0, kPairs);
  const stats::Histogram gap_pop =
      cache.population_histogram(core::Target::kInterarrivalTime, 0, kPairs);

  ASSERT_EQ(size_hist.bin_count(), size_pop.bin_count());
  for (std::size_t b = 0; b < size_pop.bin_count(); ++b) {
    EXPECT_EQ(size_hist.count(b),
              static_cast<std::uint64_t>(size_pop.count(b)))
        << "size bin " << b;
  }
  EXPECT_EQ(size_hist.total(), kPairs);

  ASSERT_EQ(gap_hist.bin_count(), gap_pop.bin_count());
  for (std::size_t b = 0; b < gap_pop.bin_count(); ++b) {
    EXPECT_EQ(gap_hist.count(b), static_cast<std::uint64_t>(gap_pop.count(b)))
        << "gap bin " << b;
  }
  EXPECT_EQ(gap_hist.total(), kPairs - 1) << "first packet has no gap";
}

}  // namespace
}  // namespace netsample
