#include <gtest/gtest.h>

#include <vector>

#include "stats/gof.h"
#include "util/rng.h"

namespace netsample::stats {
namespace {

TEST(ChiSquaredHomogeneity, IdenticalProportionsScoreZero) {
  const std::vector<double> a = {100, 200, 300};
  const std::vector<double> b = {10, 20, 30};
  const auto r = chi_squared_homogeneity(a, b);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.significance, 1.0);
  EXPECT_DOUBLE_EQ(r.degrees_of_freedom, 2.0);
}

TEST(ChiSquaredHomogeneity, HandComputed2x2) {
  // Classic 2x2: a = {10, 20}, b = {20, 10}. Pooled row totals {30, 30},
  // column totals {30, 30}, total 60; E = 15 everywhere; chi2 = 4*25/15.
  const std::vector<double> a = {10, 20};
  const std::vector<double> b = {20, 10};
  const auto r = chi_squared_homogeneity(a, b);
  EXPECT_NEAR(r.statistic, 100.0 / 15.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.degrees_of_freedom, 1.0);
}

TEST(ChiSquaredHomogeneity, DetectsDifferentDistributions) {
  const std::vector<double> a = {500, 300, 200};
  const std::vector<double> b = {200, 300, 500};
  EXPECT_LT(chi_squared_homogeneity(a, b).significance, 1e-6);
}

TEST(ChiSquaredHomogeneity, SymmetricInArguments) {
  const std::vector<double> a = {50, 70, 80};
  const std::vector<double> b = {60, 60, 90};
  const auto ab = chi_squared_homogeneity(a, b);
  const auto ba = chi_squared_homogeneity(b, a);
  EXPECT_NEAR(ab.statistic, ba.statistic, 1e-12);
}

TEST(ChiSquaredHomogeneity, EmptyBinsSkipped) {
  const std::vector<double> a = {10, 0, 20};
  const std::vector<double> b = {12, 0, 18};
  const auto r = chi_squared_homogeneity(a, b);
  EXPECT_EQ(r.bins_used, 2u);
}

TEST(ChiSquaredHomogeneity, Validation) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> short_b = {1};
  EXPECT_THROW((void)chi_squared_homogeneity(a, short_b),
               std::invalid_argument);
  const std::vector<double> zeros = {0, 0};
  EXPECT_THROW((void)chi_squared_homogeneity(a, zeros), std::invalid_argument);
}

TEST(ChiSquaredHomogeneity, SmallCountsFlagged) {
  const std::vector<double> a = {3, 30};
  const std::vector<double> b = {4, 28};
  EXPECT_FALSE(chi_squared_homogeneity(a, b).expected_counts_adequate);
}

TEST(ChiSquaredHomogeneity, FalsePositiveRateMatchesAlpha) {
  // Draw both samples from the same multinomial; rejection rate ~ 5%.
  Rng rng(19);
  const std::vector<double> probs = {0.4, 0.35, 0.25};
  int rejections = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a(3, 0.0), b(3, 0.0);
    for (int i = 0; i < 400; ++i) {
      auto draw = [&](std::vector<double>& out) {
        double u = rng.uniform01();
        for (std::size_t c = 0; c < probs.size(); ++c) {
          if (u < probs[c] || c + 1 == probs.size()) {
            out[c] += 1.0;
            break;
          }
          u -= probs[c];
        }
      };
      draw(a);
      draw(b);
    }
    if (chi_squared_homogeneity(a, b).significance < 0.05) ++rejections;
  }
  EXPECT_GE(rejections, 2);
  EXPECT_LE(rejections, 35);
}

}  // namespace
}  // namespace netsample::stats
