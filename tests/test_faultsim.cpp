// faultsim: deterministic measurement-impairment injectors, and the contract
// they share with ingestion salvage — every impaired capture must load
// through OnCorrupt::kSalvage / TimePolicy repair without throwing, with
// counters that account for exactly what the injector did.
#include "faultsim/faultsim.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "pcap/pcap.h"
#include "synth/presets.h"

namespace netsample::faultsim {
namespace {

trace::Trace sample_trace() {
  synth::TraceModel model(synth::sdsc_minutes_config(0.05, 3));
  return model.generate();
}

std::vector<std::uint8_t> sample_capture_bytes() {
  return pcap::serialize(pcap::encode(sample_trace(), 96));
}

std::vector<trace::PacketRecord> sample_records() {
  const auto t = sample_trace();
  return {t.packets().begin(), t.packets().end()};
}

TEST(FaultSim, NamesRoundTrip) {
  for (const Fault f : all_faults()) {
    const auto parsed = parse_fault(fault_name(f));
    ASSERT_TRUE(parsed.has_value()) << fault_name(f);
    EXPECT_EQ(*parsed, f);
  }
  EXPECT_FALSE(parse_fault("gamma-rays").has_value());
  EXPECT_EQ(parse_fault("gamma-rays").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultSim, IntensityZeroIsExactNoOp) {
  const auto original_bytes = sample_capture_bytes();
  const auto original_records = sample_records();
  for (const Fault f : all_faults()) {
    ImpairmentSpec spec;
    spec.fault = f;
    spec.intensity = 0.0;
    spec.seed = 5;
    if (f == Fault::kTruncateRecords || f == Fault::kBitFlips) {
      auto bytes = original_bytes;
      const auto rep = impair_pcap_bytes(bytes, spec);
      EXPECT_EQ(rep.affected, 0u);
      EXPECT_EQ(bytes, original_bytes) << fault_name(f);
    } else {
      auto records = original_records;
      const auto rep = impair_records(records, spec);
      EXPECT_EQ(rep.affected, 0u);
      EXPECT_EQ(records, original_records) << fault_name(f);
    }
  }
}

TEST(FaultSim, SameSeedSameDamageDifferentSeedDifferentDamage) {
  for (const Fault f : all_faults()) {
    ImpairmentSpec spec;
    spec.fault = f;
    spec.intensity = 0.2;
    spec.seed = 11;
    if (f == Fault::kTruncateRecords || f == Fault::kBitFlips) {
      auto a = sample_capture_bytes();
      auto b = sample_capture_bytes();
      auto c = sample_capture_bytes();
      (void)impair_pcap_bytes(a, spec);
      (void)impair_pcap_bytes(b, spec);
      spec.seed = 12;
      (void)impair_pcap_bytes(c, spec);
      EXPECT_EQ(a, b) << fault_name(f);
      EXPECT_NE(a, c) << fault_name(f);
    } else {
      auto a = sample_records();
      auto b = sample_records();
      auto c = sample_records();
      (void)impair_records(a, spec);
      (void)impair_records(b, spec);
      spec.seed = 12;
      (void)impair_records(c, spec);
      EXPECT_EQ(a, b) << fault_name(f);
      EXPECT_NE(a, c) << fault_name(f);
    }
  }
}

TEST(FaultSim, WrongLayerAndBadIntensityThrow) {
  auto bytes = sample_capture_bytes();
  auto records = sample_records();
  ImpairmentSpec spec;
  spec.fault = Fault::kDropBursts;  // record-level
  EXPECT_THROW((void)impair_pcap_bytes(bytes, spec), std::invalid_argument);
  spec.fault = Fault::kBitFlips;  // byte-level
  EXPECT_THROW((void)impair_records(records, spec), std::invalid_argument);
  spec.intensity = 1.5;
  EXPECT_THROW((void)impair_pcap_bytes(bytes, spec), std::invalid_argument);
  spec.intensity = -0.1;
  EXPECT_THROW((void)impair_pcap_bytes(bytes, spec), std::invalid_argument);
}

TEST(FaultSim, BitFlipsTouchDataNotFraming) {
  auto bytes = sample_capture_bytes();
  const auto original = bytes;
  ImpairmentSpec spec;
  spec.fault = Fault::kBitFlips;
  spec.intensity = 0.3;
  spec.seed = 17;
  const auto rep = impair_pcap_bytes(bytes, spec);
  ASSERT_GT(rep.affected, 0u);
  EXPECT_EQ(rep.bytes_touched, rep.affected);  // one bit per affected record
  EXPECT_EQ(bytes.size(), original.size());
  // Framing intact: a default (strict-prefix) parse still sees every record.
  pcap::ParseStats stats;
  const auto parsed = pcap::parse(bytes, pcap::ParseOptions{}, &stats);
  ASSERT_TRUE(parsed.has_value());
  const auto full = pcap::parse(original);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(parsed->records.size(), full->records.size());
  EXPECT_TRUE(stats.clean());
}

TEST(FaultSim, TruncationDesyncsFramingAndSalvageRecovers) {
  auto bytes = sample_capture_bytes();
  const auto full = pcap::parse(bytes);
  ASSERT_TRUE(full.has_value());
  ImpairmentSpec spec;
  spec.fault = Fault::kTruncateRecords;
  spec.intensity = 0.05;
  spec.seed = 29;
  const auto rep = impair_pcap_bytes(bytes, spec);
  ASSERT_GT(rep.affected, 0u);
  ASSERT_GT(rep.bytes_touched, 0u);

  // Strict mode rejects the damaged capture outright.
  pcap::ParseOptions strict;
  strict.on_corrupt = pcap::OnCorrupt::kFail;
  const auto rejected = pcap::parse(bytes, strict);
  EXPECT_FALSE(rejected.has_value());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDataLoss);

  // Salvage never throws, recovers more than the clean prefix, and reports
  // the damage it skipped.
  pcap::ParseOptions salvage;
  salvage.on_corrupt = pcap::OnCorrupt::kSalvage;
  pcap::ParseStats sstats;
  const auto salvaged = pcap::parse(bytes, salvage, &sstats);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_GT(sstats.corrupt_records, 0u);
  EXPECT_FALSE(sstats.clean());

  pcap::ParseStats tstats;
  const auto prefix = pcap::parse(bytes, pcap::ParseOptions{}, &tstats);
  ASSERT_TRUE(prefix.has_value());
  EXPECT_GE(salvaged->records.size(), prefix->records.size());
  EXPECT_LE(salvaged->records.size(), full->records.size());
  // Decoding the salvaged capture must uphold the trace invariant.
  EXPECT_NO_THROW((void)pcap::decode(*salvaged));
}

TEST(FaultSim, ClockJumpBackBreaksOrderAndPoliciesRepairIt) {
  auto records = sample_records();
  ImpairmentSpec spec;
  spec.fault = Fault::kClockJumpBack;
  spec.intensity = 0.1;
  spec.seed = 31;
  const auto rep = impair_records(records, spec);
  ASSERT_GT(rep.affected, 0u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].timestamp < records[i - 1].timestamp) out_of_order = true;
  }
  ASSERT_TRUE(out_of_order);

  const trace::Trace original = sample_trace();
  trace::AppendStats clamp_stats;
  const auto clamped = impair_trace(original, spec, trace::TimePolicy::kClamp,
                                    nullptr, &clamp_stats);
  EXPECT_EQ(clamped.size(), original.size());  // clamp keeps every packet
  EXPECT_GT(clamp_stats.clamped, 0u);
  EXPECT_EQ(clamp_stats.quarantined, 0u);

  trace::AppendStats quarantine_stats;
  const auto quarantined = impair_trace(
      original, spec, trace::TimePolicy::kQuarantine, nullptr,
      &quarantine_stats);
  EXPECT_EQ(quarantined.size() + quarantine_stats.quarantined,
            original.size());
  EXPECT_GT(quarantine_stats.quarantined, 0u);
}

TEST(FaultSim, ClockJumpForwardShiftsButPreservesOrder) {
  auto records = sample_records();
  const auto original = records;
  ImpairmentSpec spec;
  spec.fault = Fault::kClockJumpForward;
  spec.intensity = 0.05;
  spec.seed = 37;
  const auto rep = impair_records(records, spec);
  ASSERT_GT(rep.affected, 0u);
  ASSERT_EQ(records.size(), original.size());
  // Forward jumps accumulate: timestamps only move later, order holds.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_GE(records[i].timestamp.usec, original[i].timestamp.usec);
  }
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].timestamp.usec, records[i].timestamp.usec);
  }
}

TEST(FaultSim, DuplicatesGrowAndDropsShrinkByAffected) {
  auto dup = sample_records();
  const std::size_t n = dup.size();
  ImpairmentSpec spec;
  spec.fault = Fault::kDuplicateRecords;
  spec.intensity = 0.2;
  spec.seed = 41;
  const auto dup_rep = impair_records(dup, spec);
  EXPECT_EQ(dup.size(), n + dup_rep.affected);

  auto dropped = sample_records();
  spec.fault = Fault::kDropBursts;
  const auto drop_rep = impair_records(dropped, spec);
  EXPECT_EQ(dropped.size(), n - drop_rep.affected);
  EXPECT_GT(drop_rep.affected, 0u);
}

TEST(FaultSim, ImpairTraceLeavesInputUntouched) {
  const trace::Trace original = sample_trace();
  const std::size_t n = original.size();
  ImpairmentSpec spec;
  spec.fault = Fault::kDropBursts;
  spec.intensity = 0.3;
  spec.seed = 43;
  ImpairmentReport rep;
  const auto impaired =
      impair_trace(original, spec, trace::TimePolicy::kClamp, &rep);
  EXPECT_EQ(original.size(), n);
  EXPECT_EQ(impaired.size(), n - rep.affected);
}

}  // namespace
}  // namespace netsample::faultsim
