#include "stats/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace netsample::stats {
namespace {

TEST(Autocorrelation, WhiteNoiseIsNearZero) {
  Rng rng(1);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) data.push_back(rng.normal());
  for (std::size_t lag : {1u, 2u, 5u, 10u}) {
    EXPECT_NEAR(autocorrelation(data, lag), 0.0, 0.03) << "lag " << lag;
  }
}

TEST(Autocorrelation, Ar1MatchesTheory) {
  // AR(1) with coefficient a has ACF(k) = a^k.
  Rng rng(2);
  const double a = 0.8;
  std::vector<double> data;
  double x = 0.0;
  for (int i = 0; i < 50000; ++i) {
    x = a * x + rng.normal();
    data.push_back(x);
  }
  EXPECT_NEAR(autocorrelation(data, 1), 0.8, 0.02);
  EXPECT_NEAR(autocorrelation(data, 2), 0.64, 0.03);
  EXPECT_NEAR(autocorrelation(data, 4), 0.41, 0.04);
}

TEST(Autocorrelation, AlternatingSeriesIsNegative) {
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(autocorrelation(data, 1), -1.0, 0.01);
}

TEST(Autocorrelation, Validation) {
  const std::vector<double> tiny = {1.0};
  EXPECT_THROW((void)autocorrelation(tiny, 1), std::invalid_argument);
  const std::vector<double> constant(100, 5.0);
  EXPECT_THROW((void)autocorrelation(constant, 1), std::invalid_argument);
  const std::vector<double> data = {1, 2, 3};
  EXPECT_THROW((void)autocorrelation(data, 3), std::invalid_argument);
}

TEST(Acf, ReturnsRequestedLags) {
  Rng rng(3);
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back(rng.uniform01());
  EXPECT_EQ(acf(data, 10).size(), 10u);
  EXPECT_EQ(acf(data, 2000).size(), 999u);  // clamped
}

TEST(IndexOfDispersion, PoissonIsNearOne) {
  Rng rng(4);
  // Per-slot Poisson(lambda=20) counts via exponential gaps.
  std::vector<double> counts;
  double t = 0.0;
  int in_slot = 0;
  int slot = 0;
  while (slot < 4000) {
    t += rng.exponential(1.0 / 20.0);
    if (static_cast<int>(t) > slot) {
      counts.push_back(in_slot);
      in_slot = 0;
      ++slot;
      // Account for skipped empty slots.
      while (static_cast<int>(t) > slot && slot < 4000) {
        counts.push_back(0);
        ++slot;
      }
    }
    ++in_slot;
  }
  for (std::size_t w : {1u, 4u, 16u}) {
    EXPECT_NEAR(index_of_dispersion(counts, w), 1.0, 0.25) << "window " << w;
  }
}

TEST(IndexOfDispersion, BurstyCountsGrowWithWindow) {
  // Correlated (AR-modulated) counts: IDC should grow with window size.
  Rng rng(5);
  std::vector<double> counts;
  double m = 0.0;
  for (int i = 0; i < 8000; ++i) {
    m = 0.9 * m + rng.normal(0.0, 1.0);
    counts.push_back(std::max(0.0, 50.0 + 10.0 * m + rng.normal(0.0, 3.0)));
  }
  const double idc1 = index_of_dispersion(counts, 1);
  const double idc16 = index_of_dispersion(counts, 16);
  EXPECT_GT(idc16, 2.0 * idc1);
}

TEST(IndexOfDispersion, Validation) {
  const std::vector<double> data = {1, 2, 3, 4};
  EXPECT_THROW((void)index_of_dispersion(data, 0), std::invalid_argument);
  EXPECT_THROW((void)index_of_dispersion(data, 5), std::invalid_argument);
  EXPECT_THROW((void)index_of_dispersion(data, 4), std::invalid_argument);
  EXPECT_NO_THROW((void)index_of_dispersion(data, 2));
}

TEST(IndexOfDispersion, ZeroCountsGiveZero) {
  const std::vector<double> zeros(100, 0.0);
  EXPECT_DOUBLE_EQ(index_of_dispersion(zeros, 4), 0.0);
}

TEST(IdcCurve, WindowLadderIsPowersOfTwo) {
  std::vector<double> counts(256, 1.0);
  counts[0] = 2.0;  // avoid constant series edge (variance fine here)
  const auto curve = idc_curve(counts, 64);
  ASSERT_GE(curve.size(), 6u);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].window, 1ull << i);
  }
}

TEST(IdcCurve, DecreasingWindowsNeverAppear) {
  Rng rng(6);
  std::vector<double> counts;
  for (int i = 0; i < 300; ++i) counts.push_back(rng.uniform(0.0, 10.0));
  const auto curve = idc_curve(counts, 1024);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].window, curve[i - 1].window);
  }
  // Windows stop while at least two aggregated windows remain.
  EXPECT_LE(curve.back().window, counts.size() / 2);
}

}  // namespace
}  // namespace netsample::stats
