#include "charact/agent.h"
#include "charact/objects.h"

#include <gtest/gtest.h>

namespace netsample::charact {
namespace {

trace::PacketRecord pkt(std::uint64_t usec, std::uint16_t size,
                        std::uint8_t proto, net::Ipv4Address src,
                        net::Ipv4Address dst, std::uint16_t sport = 0,
                        std::uint16_t dport = 0) {
  trace::PacketRecord p;
  p.timestamp = MicroTime{usec};
  p.size = size;
  p.protocol = proto;
  p.src = src;
  p.dst = dst;
  p.src_port = sport;
  p.dst_port = dport;
  return p;
}

const net::Ipv4Address kSdsc1(132, 249, 1, 1);
const net::Ipv4Address kSdsc2(132, 249, 7, 9);
const net::Ipv4Address kRemoteB(128, 32, 5, 5);
const net::Ipv4Address kRemoteC(192, 203, 230, 10);

TEST(NetMatrix, AggregatesByNetworkNumberPair) {
  NetMatrixObject m;
  // Two hosts on the same source network to the same remote net: one cell.
  m.observe(pkt(0, 100, 6, kSdsc1, kRemoteB));
  m.observe(pkt(1, 200, 6, kSdsc2, kRemoteB));
  m.observe(pkt(2, 300, 6, kSdsc1, kRemoteC));
  EXPECT_EQ(m.pair_count(), 2u);

  const auto rows = m.top(10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].second.packets, 2u);
  EXPECT_EQ(rows[0].second.bytes, 300u);
}

TEST(NetMatrix, TopNTruncates) {
  NetMatrixObject m;
  for (int i = 0; i < 10; ++i) {
    m.observe(pkt(0, 100, 6, kSdsc1, net::Ipv4Address(192, 10, static_cast<std::uint8_t>(i), 1)));
  }
  EXPECT_EQ(m.top(3).size(), 3u);
}

TEST(NetMatrix, AlignedCountsAgainstReference) {
  NetMatrixObject full, sampled;
  full.observe(pkt(0, 100, 6, kSdsc1, kRemoteB));
  full.observe(pkt(1, 100, 6, kSdsc1, kRemoteB));
  full.observe(pkt(2, 100, 6, kSdsc1, kRemoteC));
  sampled.observe(pkt(0, 100, 6, kSdsc1, kRemoteB));
  const auto counts = sampled.counts_aligned_with(full);
  ASSERT_EQ(counts.size(), 2u);
  // Reference (map) order: B pair then C pair.
  EXPECT_DOUBLE_EQ(counts[0] + counts[1], 1.0);
}

TEST(NetMatrix, ResetClears) {
  NetMatrixObject m;
  m.observe(pkt(0, 100, 6, kSdsc1, kRemoteB));
  m.reset();
  EXPECT_EQ(m.pair_count(), 0u);
}

TEST(PortDistribution, KeysOnWellKnownEnd) {
  PortDistributionObject o;
  o.observe(pkt(0, 100, 6, kSdsc1, kRemoteB, 1025, 23));   // telnet
  o.observe(pkt(1, 100, 6, kSdsc1, kRemoteB, 23, 2000));   // telnet (reversed)
  o.observe(pkt(2, 100, 17, kSdsc1, kRemoteB, 3000, 53));  // dns
  o.observe(pkt(3, 100, 6, kSdsc1, kRemoteB, 4000, 5000)); // other
  ASSERT_EQ(o.cells().size(), 3u);
  const auto telnet = o.cells().find({6, 23});
  ASSERT_NE(telnet, o.cells().end());
  EXPECT_EQ(telnet->second.packets, 2u);
  const auto other = o.cells().find({6, 0});
  ASSERT_NE(other, o.cells().end());
  EXPECT_EQ(other->second.packets, 1u);
}

TEST(PortDistribution, IgnoresNonTransportProtocols) {
  PortDistributionObject o;
  o.observe(pkt(0, 100, 1, kSdsc1, kRemoteB));
  EXPECT_TRUE(o.cells().empty());
}

TEST(ProtocolDistribution, CountsPacketsAndBytes) {
  ProtocolDistributionObject o;
  o.observe(pkt(0, 100, 6, kSdsc1, kRemoteB));
  o.observe(pkt(1, 200, 6, kSdsc1, kRemoteB));
  o.observe(pkt(2, 50, 17, kSdsc1, kRemoteB));
  o.observe(pkt(3, 60, 1, kSdsc1, kRemoteB));
  ASSERT_EQ(o.cells().size(), 3u);
  EXPECT_EQ(o.cells().at(6).packets, 2u);
  EXPECT_EQ(o.cells().at(6).bytes, 300u);
  EXPECT_EQ(o.cells().at(17).packets, 1u);
  EXPECT_EQ(o.cells().at(1).bytes, 60u);
}

TEST(PacketLengthHistogram, FiftyByteGranularity) {
  PacketLengthHistogramObject o;
  o.observe(pkt(0, 40, 6, kSdsc1, kRemoteB));
  o.observe(pkt(1, 49, 6, kSdsc1, kRemoteB));
  o.observe(pkt(2, 552, 6, kSdsc1, kRemoteB));
  o.observe(pkt(3, 1500, 6, kSdsc1, kRemoteB));
  const auto& h = o.histogram();
  EXPECT_EQ(h.count(h.bin_index(40)), 2u);
  EXPECT_EQ(h.count(h.bin_index(552)), 1u);
  EXPECT_EQ(h.count(h.bin_index(1500)), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(ArrivalRateHistogram, BinsCompletedSeconds) {
  ArrivalRateHistogramObject o;
  // 3 packets in second 0, 1 packet in second 2 (second 1 empty).
  o.observe(pkt(100, 40, 6, kSdsc1, kRemoteB));
  o.observe(pkt(200'000, 40, 6, kSdsc1, kRemoteB));
  o.observe(pkt(900'000, 40, 6, kSdsc1, kRemoteB));
  o.observe(pkt(2'100'000, 40, 6, kSdsc1, kRemoteB));
  o.flush();
  const auto& h = o.histogram();
  EXPECT_EQ(h.total(), 3u);  // seconds 0, 1, 2
  // 3 pps, the empty second's 0 pps, and 1 pps all land in the [0,20) bin.
  EXPECT_EQ(h.count(h.bin_index(0.0)), 3u);
}

TEST(ArrivalRateHistogram, FlushIsIdempotent) {
  ArrivalRateHistogramObject o;
  o.observe(pkt(0, 40, 6, kSdsc1, kRemoteB));
  o.flush();
  o.flush();
  EXPECT_EQ(o.histogram().total(), 1u);
}

TEST(VolumeObject, Accumulates) {
  VolumeObject v("test");
  v.observe(pkt(0, 100, 6, kSdsc1, kRemoteB));
  v.observe(pkt(1, 200, 6, kSdsc1, kRemoteB));
  EXPECT_EQ(v.volume().packets, 2u);
  EXPECT_EQ(v.volume().bytes, 300u);
  v.reset();
  EXPECT_EQ(v.volume().packets, 0u);
}

TEST(NodeSupport, Table1Matrix) {
  // T1 supports everything.
  for (auto k : {ObjectKind::kNetMatrix, ObjectKind::kPortDistribution,
                 ObjectKind::kProtocolDistribution,
                 ObjectKind::kPacketLengthHistogram, ObjectKind::kOutboundVolume,
                 ObjectKind::kArrivalRateHistogram, ObjectKind::kTransitVolume}) {
    EXPECT_TRUE(node_supports(NodeType::kT1, k));
  }
  // T3 supports only the first three.
  EXPECT_TRUE(node_supports(NodeType::kT3, ObjectKind::kNetMatrix));
  EXPECT_TRUE(node_supports(NodeType::kT3, ObjectKind::kPortDistribution));
  EXPECT_TRUE(node_supports(NodeType::kT3, ObjectKind::kProtocolDistribution));
  EXPECT_FALSE(node_supports(NodeType::kT3, ObjectKind::kPacketLengthHistogram));
  EXPECT_FALSE(node_supports(NodeType::kT3, ObjectKind::kArrivalRateHistogram));
  EXPECT_FALSE(node_supports(NodeType::kT3, ObjectKind::kOutboundVolume));
  EXPECT_FALSE(node_supports(NodeType::kT3, ObjectKind::kTransitVolume));
}

TEST(CollectionAgent, PollCycleReportsAndResets) {
  // 20-minute stream with a 15-minute poll: expect 2 reports.
  std::vector<trace::PacketRecord> v;
  for (int i = 0; i < 1200; ++i) {
    v.push_back(pkt(static_cast<std::uint64_t>(i) * 1'000'000, 100, 6, kSdsc1,
                    kRemoteB, 1025, 23));
  }
  CollectionAgent agent(NodeType::kT1);
  agent.run(trace::Trace(std::move(v)).view());
  ASSERT_EQ(agent.reports().size(), 2u);
  EXPECT_EQ(agent.reports()[0].packets_examined, 900u);
  EXPECT_EQ(agent.reports()[1].packets_examined, 300u);
  EXPECT_EQ(agent.reports()[0].cycle, 0u);
  EXPECT_EQ(agent.reports()[1].cycle, 1u);
}

TEST(CollectionAgent, SelectorSamplesHeaders) {
  std::vector<trace::PacketRecord> v;
  for (int i = 0; i < 500; ++i) {
    v.push_back(pkt(static_cast<std::uint64_t>(i) * 1000, 100, 6, kSdsc1,
                    kRemoteB, 1025, 23));
  }
  int counter = 0;
  CollectionAgent agent(NodeType::kT3, [&counter](const trace::PacketRecord&) {
    return counter++ % 50 == 0;  // the operational 1-in-50
  });
  agent.run(trace::Trace(std::move(v)).view());
  ASSERT_EQ(agent.reports().size(), 1u);
  EXPECT_EQ(agent.reports()[0].packets_offered, 500u);
  EXPECT_EQ(agent.reports()[0].packets_examined, 10u);
}

TEST(CollectionAgent, T3OmitsT1OnlyObjects) {
  std::vector<trace::PacketRecord> v = {pkt(0, 100, 6, kSdsc1, kRemoteB, 1, 23)};
  CollectionAgent agent(NodeType::kT3);
  agent.run(trace::Trace(std::move(v)).view());
  ASSERT_EQ(agent.reports().size(), 1u);
  EXPECT_TRUE(agent.reports()[0].length_histogram.empty());
  EXPECT_TRUE(agent.reports()[0].arrival_rate_histogram.empty());
  EXPECT_EQ(agent.reports()[0].outbound.packets, 0u);
  EXPECT_FALSE(agent.reports()[0].protocols.empty());
}

TEST(CollectionAgent, EmptySecondCyclesSkipped) {
  CollectionAgent agent(NodeType::kT1);
  agent.flush();  // nothing offered: no report
  EXPECT_TRUE(agent.reports().empty());
}

TEST(CollectionAgent, InvalidPollPeriodThrows) {
  EXPECT_THROW(CollectionAgent(NodeType::kT1, nullptr, MicroDuration{0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace netsample::charact
