#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace netsample {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.split();
  // The child stream should not reproduce the parent's continuation.
  Rng parent2(7);
  (void)parent2();  // consume the value that seeded the child
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent2()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      ASSERT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowZeroReturnsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_below(0), 0u);
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformBelowIsApproximatelyUniform) {
  Rng rng(17);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_below(bound)];
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(Rng, UniformInInclusiveRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_in(5, 9);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 9u);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2358.0);
  EXPECT_NEAR(sum / n, 2358.0, 30.0);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) ASSERT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(31);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMeanMatchesFormula) {
  Rng rng(41);
  const double mu = 0.0, sigma = 0.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / n, std::exp(mu + sigma * sigma / 2.0), 0.02);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(43);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ParetoMeanMatchesFormula) {
  Rng rng(47);
  const double xm = 1.0, alpha = 3.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(xm, alpha);
  EXPECT_NEAR(sum / n, alpha * xm / (alpha - 1.0), 0.02);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(53);
  const double p = 0.2;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.1);
}

TEST(Rng, GeometricWithCertainSuccessIsZero) {
  Rng rng(59);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(61);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

}  // namespace
}  // namespace netsample
