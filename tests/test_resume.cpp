// Kill-and-resume: a sweep cancelled mid-flight and resumed from its
// checkpoint journal must reproduce the uninterrupted sweep bit-for-bit, at
// any --jobs level and even when the kill and the resume use different jobs
// counts. This is the acceptance test for the fault-tolerant sweep engine.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "exper/experiment.h"
#include "exper/journal.h"
#include "exper/parallel.h"

namespace netsample::exper {
namespace {

class ResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ex_ = new Experiment(23, 2.0); }
  static void TearDownTestSuite() {
    delete ex_;
    ex_ = nullptr;
  }

  /// A 12-cell method x granularity grid, big enough that cancelling after
  /// five collected cells leaves genuinely unfinished work behind.
  static std::vector<GridTask> grid() {
    std::vector<GridTask> tasks;
    for (auto m : {core::Method::kSystematicCount,
                   core::Method::kStratifiedCount, core::Method::kSimpleRandom,
                   core::Method::kSystematicTimer}) {
      for (std::uint64_t k : {8ULL, 32ULL, 128ULL}) {
        GridTask t;
        t.config.method = m;
        t.config.target = core::Target::kPacketSize;
        t.config.granularity = k;
        t.config.interval = ex_->full();
        t.config.mean_interarrival_usec = ex_->mean_interarrival_usec();
        t.config.replications = 3;
        tasks.push_back(t);
      }
    }
    return tasks;
  }

  static void expect_bit_identical(const RunReport& report,
                                   const std::vector<CellResult>& reference) {
    ASSERT_EQ(report.cells.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_TRUE(report.cells[i].status.is_ok()) << "cell " << i;
      const auto& a = report.cells[i].result.replications;
      const auto& b = reference[i].replications;
      ASSERT_EQ(a.size(), b.size()) << "cell " << i;
      for (std::size_t r = 0; r < a.size(); ++r) {
        EXPECT_EQ(a[r].phi, b[r].phi) << "cell " << i << " rep " << r;
        EXPECT_EQ(a[r].chi2, b[r].chi2) << "cell " << i << " rep " << r;
        EXPECT_EQ(a[r].significance, b[r].significance) << "cell " << i;
        EXPECT_EQ(a[r].sample_n, b[r].sample_n) << "cell " << i;
      }
    }
  }

  /// Run the grid, cancel the sweep once five outcomes have been collected,
  /// journaling to `path`. Returns how many cells completed OK.
  static std::size_t killed_run(const std::string& path, int jobs) {
    auto journal = CheckpointJournal::open(path);
    EXPECT_TRUE(journal.has_value());
    util::CancelToken sweep;
    RunOptions opts;
    opts.on_error = FailPolicy::kSkip;
    opts.cancel = &sweep;
    opts.journal = &*journal;
    std::size_t collected = 0;
    opts.on_cell_done = [&](std::size_t, const Status&) {
      if (++collected == 5) sweep.cancel();
    };
    ParallelRunner runner(jobs);
    // With jobs > 1 the workers race the cancel, so how many cells finish
    // is schedule-dependent — resume must be bit-identical regardless.
    const auto report = runner.run(grid(), kSeed, opts);
    return report.ok_count();
  }

  static constexpr std::uint64_t kSeed = 23;
  static Experiment* ex_;
};

Experiment* ResumeTest::ex_ = nullptr;

std::string journal_path(const std::string& name) {
  const auto p = (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove(p);
  return p;
}

TEST_F(ResumeTest, KillAndResumeIsBitIdenticalSerial) {
  const auto tasks = grid();
  ParallelRunner serial(1);
  const auto reference = serial.run(tasks, kSeed);

  const std::string path = journal_path("netsample_resume_serial.jsonl");
  const std::size_t completed = killed_run(path, /*jobs=*/1);
  // Serial collection is strictly ordered: exactly the five cells collected
  // before the cancel completed and were journaled.
  EXPECT_EQ(completed, 5u);

  auto journal = CheckpointJournal::open(path);
  ASSERT_TRUE(journal.has_value());
  EXPECT_EQ(journal->size(), 5u);
  RunOptions opts;
  opts.journal = &*journal;
  const auto resumed = serial.run(tasks, kSeed, opts);
  ASSERT_TRUE(resumed.all_ok());
  // The journaled cells replayed instead of recomputing.
  std::size_t replayed = 0;
  for (const auto& c : resumed.cells) replayed += c.from_journal ? 1 : 0;
  EXPECT_EQ(replayed, 5u);
  expect_bit_identical(resumed, reference);
  std::filesystem::remove(path);
}

TEST_F(ResumeTest, KillAndResumeIsBitIdenticalThreaded) {
  const auto tasks = grid();
  ParallelRunner serial(1);
  const auto reference = serial.run(tasks, kSeed);

  const std::string path = journal_path("netsample_resume_threaded.jsonl");
  (void)killed_run(path, /*jobs=*/4);  // threaded kill: completion set varies

  auto journal = CheckpointJournal::open(path);
  ASSERT_TRUE(journal.has_value());
  ParallelRunner threaded(4);
  RunOptions opts;
  opts.journal = &*journal;
  const auto resumed = threaded.run(tasks, kSeed, opts);
  ASSERT_TRUE(resumed.all_ok());
  expect_bit_identical(resumed, reference);
  std::filesystem::remove(path);
}

TEST_F(ResumeTest, JournalFromSerialKillResumesUnderThreads) {
  const auto tasks = grid();
  ParallelRunner serial(1);
  const auto reference = serial.run(tasks, kSeed);

  const std::string path = journal_path("netsample_resume_cross.jsonl");
  (void)killed_run(path, /*jobs=*/1);

  auto journal = CheckpointJournal::open(path);
  ASSERT_TRUE(journal.has_value());
  ParallelRunner threaded(3);
  RunOptions opts;
  opts.journal = &*journal;
  const auto resumed = threaded.run(tasks, kSeed, opts);
  ASSERT_TRUE(resumed.all_ok());
  expect_bit_identical(resumed, reference);
  std::filesystem::remove(path);
}

TEST_F(ResumeTest, ResumeWithFullJournalRecomputesNothing) {
  const auto tasks = grid();
  const std::string path = journal_path("netsample_resume_full.jsonl");
  {
    auto journal = CheckpointJournal::open(path);
    ASSERT_TRUE(journal.has_value());
    RunOptions opts;
    opts.journal = &*journal;
    ParallelRunner serial(1);
    ASSERT_TRUE(serial.run(tasks, kSeed, opts).all_ok());
  }
  auto journal = CheckpointJournal::open(path);
  ASSERT_TRUE(journal.has_value());
  EXPECT_EQ(journal->size(), tasks.size());
  RunOptions opts;
  opts.journal = &*journal;
  // A fault injector that fails every attempt proves no cell re-executed.
  opts.fault_injector = [](std::size_t, int) {
    return Status(StatusCode::kInternal, "must not execute");
  };
  ParallelRunner serial(1);
  const auto resumed = serial.run(tasks, kSeed, opts);
  ASSERT_TRUE(resumed.all_ok());
  for (const auto& c : resumed.cells) EXPECT_TRUE(c.from_journal);
  std::filesystem::remove(path);
}

TEST_F(ResumeTest, JournalFromDifferentBaseSeedNeverMatches) {
  const auto tasks = grid();
  const std::string path = journal_path("netsample_resume_seed.jsonl");
  {
    auto journal = CheckpointJournal::open(path);
    ASSERT_TRUE(journal.has_value());
    RunOptions opts;
    opts.journal = &*journal;
    ParallelRunner serial(1);
    ASSERT_TRUE(serial.run(tasks, kSeed, opts).all_ok());
  }
  auto journal = CheckpointJournal::open(path);
  ASSERT_TRUE(journal.has_value());
  RunOptions opts;
  opts.journal = &*journal;
  ParallelRunner serial(1);
  const auto other = serial.run(tasks, kSeed + 1, opts);
  ASSERT_TRUE(other.all_ok());
  for (const auto& c : other.cells) EXPECT_FALSE(c.from_journal);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace netsample::exper
