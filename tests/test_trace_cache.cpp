// Tests for the shared per-packet bin cache (core/trace_cache.h): bin ids
// agree with Histogram::bin_index, prefix-sum population histograms agree
// with the legacy re-binning over arbitrary sub-ranges, sub-view plumbing
// (contains / offset_of), sampled-histogram accumulation, and the
// legacy-scan switch.
#include "core/trace_cache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/targets.h"
#include "stats/histogram.h"
#include "synth/presets.h"
#include "util/rng.h"

namespace netsample::core {
namespace {

trace::Trace bursty_trace() {
  // A couple of synthetic minutes: bursts, idle gaps, the full size mix.
  static const trace::Trace t =
      synth::TraceModel(synth::sdsc_minutes_config(2.0, 23)).generate();
  return trace::Trace(t);  // copy; tests may outlive the static's first use
}

const trace::Trace& shared_trace() {
  static const trace::Trace t = bursty_trace();
  return t;
}

trace::TraceView subview(trace::TraceView v, std::size_t b, std::size_t e) {
  return trace::TraceView(v.packets().subspan(b, e - b));
}

void expect_same_counts(const stats::Histogram& got,
                        const stats::Histogram& want, const char* what) {
  ASSERT_EQ(got.bin_count(), want.bin_count()) << what;
  for (std::size_t b = 0; b < want.bin_count(); ++b) {
    EXPECT_EQ(got.count(b), want.count(b)) << what << " bin " << b;
  }
  EXPECT_EQ(got.total(), want.total()) << what;
}

TEST(BinnedTraceCache, BinIdsMatchHistogramBinIndex) {
  const auto view = shared_trace().view();
  const BinnedTraceCache cache(view);
  ASSERT_EQ(cache.size(), view.size());
  const auto size_layout = make_target_histogram(Target::kPacketSize);
  const auto gap_layout = make_target_histogram(Target::kInterarrivalTime);
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(cache.size_bins()[i],
              size_layout.bin_index(static_cast<double>(view[i].size)))
        << "packet " << i;
    EXPECT_EQ(cache.timestamps()[i], view[i].timestamp.usec) << "packet " << i;
    if (i > 0) {
      const double gap = static_cast<double>(
          (view[i].timestamp - view[i - 1].timestamp).usec);
      EXPECT_EQ(cache.gap_bins()[i], gap_layout.bin_index(gap)) << "gap " << i;
    }
  }
}

TEST(BinnedTraceCache, PopulationHistogramMatchesLegacyBinningOnRandomRanges) {
  const auto view = shared_trace().view();
  const BinnedTraceCache cache(view);
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t b = rng.uniform_below(view.size());
    std::size_t e = rng.uniform_below(view.size() + 1);
    if (b > e) std::swap(b, e);
    const auto sub = subview(view, b, e);
    for (auto t : {Target::kPacketSize, Target::kInterarrivalTime}) {
      const auto fast = cache.population_histogram(t, b, e);
      const auto legacy = bin_values(population_values(sub, t),
                                     make_target_histogram(t));
      expect_same_counts(fast, legacy, target_name(t));
    }
  }
}

TEST(BinnedTraceCache, PopulationHistogramEdgeRanges) {
  const auto view = shared_trace().view();
  const BinnedTraceCache cache(view);
  for (auto t : {Target::kPacketSize, Target::kInterarrivalTime}) {
    // Empty range: all-zero counts with the paper layout.
    const auto empty = cache.population_histogram(t, 5, 5);
    EXPECT_EQ(empty.total(), 0u);
    EXPECT_EQ(empty.bin_count(), make_target_histogram(t).bin_count());
    // Single packet: one size value, no gaps.
    const auto one = cache.population_histogram(t, 7, 8);
    EXPECT_EQ(one.total(), t == Target::kPacketSize ? 1u : 0u);
  }
  EXPECT_THROW((void)cache.population_histogram(Target::kPacketSize, 3, 2),
               std::out_of_range);
  EXPECT_THROW((void)cache.population_histogram(Target::kPacketSize, 0,
                                                cache.size() + 1),
               std::out_of_range);
}

TEST(BinnedTraceCache, SampleHistogramMatchesLegacySampleBinning) {
  const auto view = shared_trace().view();
  const BinnedTraceCache cache(view);
  const std::size_t b = 100, e = view.size() - 50;
  const auto sub = subview(view, b, e);
  // A sample that includes relative index 0 (no predecessor gap).
  std::vector<std::size_t> indices = {0, 1, 17, 40, 41, sub.size() - 1};
  const Sample s{sub, indices};
  for (auto t : {Target::kPacketSize, Target::kInterarrivalTime}) {
    const auto fast = cache.sample_histogram(t, indices, b);
    const auto legacy =
        bin_values(sample_values(s, t), make_target_histogram(t));
    expect_same_counts(fast, legacy, target_name(t));
  }
}

TEST(BinnedTraceCache, ContainsAndOffsetOf) {
  const auto view = shared_trace().view();
  const BinnedTraceCache cache(view);
  const auto sub = subview(view, 10, 200);
  EXPECT_TRUE(cache.contains(view));
  EXPECT_TRUE(cache.contains(sub));
  EXPECT_EQ(cache.offset_of(view), 0u);
  EXPECT_EQ(cache.offset_of(sub), 10u);

  // A view over different storage is not contained.
  const auto other = bursty_trace();
  EXPECT_FALSE(cache.contains(other.view()));
  EXPECT_THROW((void)cache.offset_of(other.view()), std::out_of_range);
  EXPECT_FALSE(cache.contains(trace::TraceView{}));
}

TEST(BinnedTraceCache, LowerBoundTime) {
  const auto view = shared_trace().view();
  const BinnedTraceCache cache(view);
  const auto ts = cache.timestamps();
  EXPECT_EQ(cache.lower_bound_time(ts[0], 0, cache.size()), 0u);
  EXPECT_EQ(cache.lower_bound_time(ts.back() + 1, 0, cache.size()),
            cache.size());
  const std::size_t j = cache.lower_bound_time(ts[42] + 1, 0, cache.size());
  EXPECT_GT(j, 42u);
  EXPECT_TRUE(j == cache.size() || ts[j] > ts[42]);
}

TEST(HistogramWithCounts, BuildsAndValidates) {
  const std::vector<double> edges = {10.0, 20.0};
  const auto h = stats::Histogram::with_counts(edges, {3, 4, 5});
  EXPECT_EQ(h.bin_count(), 3u);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.count(2), 5u);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_THROW((void)stats::Histogram::with_counts(edges, {1, 2}),
               std::invalid_argument);
}

TEST(LegacyScanSwitch, ProgrammaticOverrideWinsAndClears) {
  // The test binary does not set NETSAMPLE_LEGACY_SCAN, so the environment
  // default is "fast path".
  clear_legacy_scan_override();
  force_legacy_scan(true);
  EXPECT_TRUE(legacy_scan_forced());
  force_legacy_scan(false);
  EXPECT_FALSE(legacy_scan_forced());
  clear_legacy_scan_override();
  EXPECT_FALSE(legacy_scan_forced());
}

}  // namespace
}  // namespace netsample::core
