// Robustness property tests for the pcap parser: arbitrary truncation and
// byte corruption must never crash, and truncation must degrade gracefully
// to a clean prefix of the records.
#include <gtest/gtest.h>

#include "net/ipv4.h"
#include "pcap/pcap.h"
#include "synth/presets.h"
#include "util/rng.h"

namespace netsample::pcap {
namespace {

std::vector<std::uint8_t> sample_capture_bytes() {
  synth::TraceModel model(synth::sdsc_minutes_config(0.05, 3));
  return serialize(encode(model.generate(), 96));
}

class TruncationTest : public ::testing::TestWithParam<int> {};

TEST_P(TruncationTest, TruncatedFilesParseToCleanPrefix) {
  static const std::vector<std::uint8_t> whole = sample_capture_bytes();
  const auto full = parse(whole);
  ASSERT_TRUE(full.has_value());
  const std::size_t full_records = full->records.size();
  ASSERT_GT(full_records, 10u);

  // Truncate at a pseudo-random point determined by the parameter.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t cut = rng.uniform_below(whole.size());
  std::vector<std::uint8_t> torn(whole.begin(),
                                 whole.begin() + static_cast<long>(cut));
  const auto parsed = parse(torn);
  if (cut < 24) {
    EXPECT_FALSE(parsed.has_value());
    return;
  }
  ASSERT_TRUE(parsed.has_value());
  EXPECT_LE(parsed->records.size(), full_records);
  // Every surviving record must equal the corresponding full record.
  for (std::size_t i = 0; i < parsed->records.size(); ++i) {
    EXPECT_EQ(parsed->records[i].timestamp, full->records[i].timestamp);
    EXPECT_EQ(parsed->records[i].data, full->records[i].data);
  }
  // Decoding the prefix must also succeed without throwing.
  DecodeStats stats;
  EXPECT_NO_THROW((void)decode(*parsed, &stats));
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationTest, ::testing::Range(0, 24));

class CorruptionTest : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionTest, RandomByteFlipsNeverCrash) {
  static const std::vector<std::uint8_t> whole = sample_capture_bytes();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  std::vector<std::uint8_t> corrupted = whole;
  // Flip up to 16 random bytes.
  const int flips = 1 + static_cast<int>(rng.uniform_below(16));
  for (int i = 0; i < flips; ++i) {
    const std::size_t pos = rng.uniform_below(corrupted.size());
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_below(255));
  }
  const auto parsed = parse(corrupted);
  if (parsed.has_value()) {
    DecodeStats stats;
    const auto t = decode(*parsed, &stats);
    // Whatever decodes must satisfy the trace invariant (time-ordered).
    for (std::size_t i = 1; i < t.size(); ++i) {
      EXPECT_LE(t[i - 1].timestamp.usec, t[i].timestamp.usec);
    }
  }
  // No value is fine too (corrupted magic/version); the property is no
  // crash, no exception from parse.
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionTest, ::testing::Range(0, 16));

TEST(PcapRobustness, HeaderOnlyFileIsEmptyCapture) {
  const auto whole = sample_capture_bytes();
  std::vector<std::uint8_t> header_only(whole.begin(), whole.begin() + 24);
  const auto parsed = parse(header_only);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->records.empty());
}

TEST(PcapRobustness, RecordClaimingHugeLengthStopsCleanly) {
  auto whole = sample_capture_bytes();
  // Overwrite the first record's incl_len with a huge value.
  whole[24 + 8] = 0xFF;
  whole[24 + 9] = 0xFF;
  whole[24 + 10] = 0xFF;
  whole[24 + 11] = 0x7F;
  const auto parsed = parse(whole);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->records.empty());  // torn at record 0, prefix is empty
}

// ---------------------------------------------------------------------------
// OnCorrupt policies: strict rejection vs salvage resync
// ---------------------------------------------------------------------------

/// Stomp record `n`'s incl_len with garbage (framing stays aligned because
/// the original length is remembered by the caller walking the clean file).
std::vector<std::uint8_t> with_stomped_record(std::size_t n) {
  auto bytes = sample_capture_bytes();
  std::size_t off = 24;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t incl = static_cast<std::uint32_t>(bytes[off + 8]) |
                               (static_cast<std::uint32_t>(bytes[off + 9]) << 8) |
                               (static_cast<std::uint32_t>(bytes[off + 10]) << 16) |
                               (static_cast<std::uint32_t>(bytes[off + 11]) << 24);
    off += 16 + incl;
  }
  bytes[off + 8] = 0xEF;
  bytes[off + 9] = 0xBE;
  bytes[off + 10] = 0xAD;
  bytes[off + 11] = 0xDE;
  return bytes;
}

TEST(PcapSalvage, StrictModeRejectsWithDataLoss) {
  const auto corrupted = with_stomped_record(5);
  ParseOptions options;
  options.on_corrupt = OnCorrupt::kFail;
  const auto parsed = parse(corrupted, options);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

TEST(PcapSalvage, StrictModeAcceptsCleanCapture) {
  const auto whole = sample_capture_bytes();
  ParseOptions options;
  options.on_corrupt = OnCorrupt::kFail;
  ParseStats stats;
  const auto parsed = parse(whole, options, &stats);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(stats.clean());
  EXPECT_EQ(stats.records, parsed->records.size());
}

TEST(PcapSalvage, SalvageResyncsPastCorruptHeader) {
  const auto full = parse(sample_capture_bytes());
  ASSERT_TRUE(full.has_value());
  const auto corrupted = with_stomped_record(5);

  // Default (truncate) keeps only the 5-record clean prefix...
  ParseStats tstats;
  const auto prefix = parse(corrupted, ParseOptions{}, &tstats);
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->records.size(), 5u);
  EXPECT_EQ(tstats.corrupt_records, 1u);

  // ...while salvage skips the damage and keeps reading. Resync may false-
  // sync inside the orphaned record's payload (packet bytes can look like a
  // plausible header), so the guarantee is recovery well beyond the prefix
  // with the damage accounted, not byte-exact record identity.
  ParseOptions options;
  options.on_corrupt = OnCorrupt::kSalvage;
  ParseStats sstats;
  const auto salvaged = parse(corrupted, options, &sstats);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_GE(sstats.corrupt_records, 1u);
  EXPECT_GT(sstats.skipped_bytes, 0u);
  EXPECT_GT(salvaged->records.size(), prefix->records.size());
  // False syncs can also split the orphaned payload into a few bogus
  // records, so the count may slightly exceed the clean total.
  EXPECT_LT(salvaged->records.size(), full->records.size() + 16);
  // The clean prefix is still read exactly.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(salvaged->records[i].data, full->records[i].data);
  }
  EXPECT_NO_THROW((void)decode(*salvaged));
}

TEST(PcapSalvage, SalvageNeverThrowsOnArbitraryCorruption) {
  const auto whole = sample_capture_bytes();
  ParseOptions options;
  options.on_corrupt = OnCorrupt::kSalvage;
  for (int seed = 0; seed < 16; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 13);
    auto corrupted = whole;
    const int flips = 1 + static_cast<int>(rng.uniform_below(64));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = rng.uniform_below(corrupted.size());
      corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_below(255));
    }
    EXPECT_NO_THROW({
      ParseStats stats;
      const auto parsed = parse(corrupted, options, &stats);
      if (parsed.has_value()) (void)decode(*parsed);
    });
  }
}

TEST(PcapSalvage, SalvageOnCleanCaptureIsExact) {
  const auto whole = sample_capture_bytes();
  const auto full = parse(whole);
  ASSERT_TRUE(full.has_value());
  ParseOptions options;
  options.on_corrupt = OnCorrupt::kSalvage;
  ParseStats stats;
  const auto salvaged = parse(whole, options, &stats);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_TRUE(stats.clean());
  ASSERT_EQ(salvaged->records.size(), full->records.size());
  for (std::size_t i = 0; i < full->records.size(); ++i) {
    EXPECT_EQ(salvaged->records[i].data, full->records[i].data);
  }
}

TEST(PcapSalvage, TornTailIsCountedSeparatelyFromCorruption) {
  const auto whole = sample_capture_bytes();
  // Chop mid-way through the last record's data.
  std::vector<std::uint8_t> torn(whole.begin(), whole.end() - 7);
  ParseOptions options;
  options.on_corrupt = OnCorrupt::kSalvage;
  ParseStats stats;
  const auto parsed = parse(torn, options, &stats);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(stats.corrupt_records, 0u);
  EXPECT_GT(stats.torn_tail_bytes, 0u);
  EXPECT_FALSE(stats.clean());
}

}  // namespace
}  // namespace netsample::pcap
