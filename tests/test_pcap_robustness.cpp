// Robustness property tests for the pcap parser: arbitrary truncation and
// byte corruption must never crash, and truncation must degrade gracefully
// to a clean prefix of the records.
#include <gtest/gtest.h>

#include "net/ipv4.h"
#include "pcap/pcap.h"
#include "synth/presets.h"
#include "util/rng.h"

namespace netsample::pcap {
namespace {

std::vector<std::uint8_t> sample_capture_bytes() {
  synth::TraceModel model(synth::sdsc_minutes_config(0.05, 3));
  return serialize(encode(model.generate(), 96));
}

class TruncationTest : public ::testing::TestWithParam<int> {};

TEST_P(TruncationTest, TruncatedFilesParseToCleanPrefix) {
  static const std::vector<std::uint8_t> whole = sample_capture_bytes();
  const auto full = parse(whole);
  ASSERT_TRUE(full.has_value());
  const std::size_t full_records = full->records.size();
  ASSERT_GT(full_records, 10u);

  // Truncate at a pseudo-random point determined by the parameter.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t cut = rng.uniform_below(whole.size());
  std::vector<std::uint8_t> torn(whole.begin(),
                                 whole.begin() + static_cast<long>(cut));
  const auto parsed = parse(torn);
  if (cut < 24) {
    EXPECT_FALSE(parsed.has_value());
    return;
  }
  ASSERT_TRUE(parsed.has_value());
  EXPECT_LE(parsed->records.size(), full_records);
  // Every surviving record must equal the corresponding full record.
  for (std::size_t i = 0; i < parsed->records.size(); ++i) {
    EXPECT_EQ(parsed->records[i].timestamp, full->records[i].timestamp);
    EXPECT_EQ(parsed->records[i].data, full->records[i].data);
  }
  // Decoding the prefix must also succeed without throwing.
  DecodeStats stats;
  EXPECT_NO_THROW((void)decode(*parsed, &stats));
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationTest, ::testing::Range(0, 24));

class CorruptionTest : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionTest, RandomByteFlipsNeverCrash) {
  static const std::vector<std::uint8_t> whole = sample_capture_bytes();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  std::vector<std::uint8_t> corrupted = whole;
  // Flip up to 16 random bytes.
  const int flips = 1 + static_cast<int>(rng.uniform_below(16));
  for (int i = 0; i < flips; ++i) {
    const std::size_t pos = rng.uniform_below(corrupted.size());
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_below(255));
  }
  const auto parsed = parse(corrupted);
  if (parsed.has_value()) {
    DecodeStats stats;
    const auto t = decode(*parsed, &stats);
    // Whatever decodes must satisfy the trace invariant (time-ordered).
    for (std::size_t i = 1; i < t.size(); ++i) {
      EXPECT_LE(t[i - 1].timestamp.usec, t[i].timestamp.usec);
    }
  }
  // No value is fine too (corrupted magic/version); the property is no
  // crash, no exception from parse.
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionTest, ::testing::Range(0, 16));

TEST(PcapRobustness, HeaderOnlyFileIsEmptyCapture) {
  const auto whole = sample_capture_bytes();
  std::vector<std::uint8_t> header_only(whole.begin(), whole.begin() + 24);
  const auto parsed = parse(header_only);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->records.empty());
}

TEST(PcapRobustness, RecordClaimingHugeLengthStopsCleanly) {
  auto whole = sample_capture_bytes();
  // Overwrite the first record's incl_len with a huge value.
  whole[24 + 8] = 0xFF;
  whole[24 + 9] = 0xFF;
  whole[24 + 10] = 0xFF;
  whole[24 + 11] = 0x7F;
  const auto parsed = parse(whole);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->records.empty());  // torn at record 0, prefix is empty
}

}  // namespace
}  // namespace netsample::pcap
