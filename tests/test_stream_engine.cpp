// The streaming scorer's determinism contract, pinned:
//
//  * bit-identity — a drain-mode Engine fed the batch runner's interval at
//    chunk sizes 1 / 64 / 4096 produces byte-identical phi (and identical
//    selected indices) to exper::run_cell on the BinnedTraceCache fast
//    path, for all five methods and both histogram targets;
//  * chunking independence — any two chunkings agree, including through
//    the SPSC pipeline;
//  * rolling windows — k=1 lanes score phi == 0 in every window (sample
//    equals population by construction), a window that covers the whole
//    stream reproduces drain mode, and windowed memory stays O(window);
//  * cancellation and argument validation unwind as specified.
#include "stream/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/sampler.h"
#include "core/samplers.h"
#include "exper/experiment.h"
#include "exper/runner.h"
#include "stream/pipeline.h"
#include "stream/source.h"
#include "util/cancel.h"
#include "util/status.h"

namespace netsample::stream {
namespace {

// One shared 2-minute synthetic trace: big enough that every method's
// sample has structure, small enough for chunk-size-1 sweeps.
exper::Experiment& experiment() {
  static exper::Experiment ex(23, 2.0);
  return ex;
}

exper::CellConfig cell_config(core::Method method, core::Target target) {
  auto& ex = experiment();
  exper::CellConfig cfg;
  cfg.method = method;
  cfg.target = target;
  cfg.granularity = 10;
  cfg.interval = ex.full();
  cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
  cfg.replications = 3;
  cfg.base_seed = 77;
  cfg.cache = &ex.binned_cache();
  return cfg;
}

void feed_in_chunks(Engine& engine, trace::TraceView view, std::size_t chunk) {
  const auto packets = view.packets();
  for (std::size_t i = 0; i < packets.size(); i += chunk) {
    engine.feed(packets.subspan(i, std::min(chunk, packets.size() - i)));
  }
}

constexpr core::Method kAllMethods[] = {
    core::Method::kSystematicCount, core::Method::kStratifiedCount,
    core::Method::kSimpleRandom, core::Method::kSystematicTimer,
    core::Method::kStratifiedTimer};
constexpr core::Target kBothTargets[] = {core::Target::kPacketSize,
                                         core::Target::kInterarrivalTime};

// ---------------------------------------------------------------------------
// Bit-identity against the batch fast path, at chunk sizes 1 / 64 / 4096.
// ---------------------------------------------------------------------------

TEST(StreamEngine, BitIdenticalToBatchCellAtAnyChunkSize) {
  for (const auto method : kAllMethods) {
    for (const auto target : kBothTargets) {
      const auto cfg = cell_config(method, target);
      const auto batch = exper::run_cell(cfg);
      ASSERT_EQ(batch.replications.size(), 3u);

      for (const std::size_t chunk : {std::size_t{1}, std::size_t{64},
                                      std::size_t{4096}}) {
        Engine engine(lanes_for_cell(cfg));
        feed_in_chunks(engine, cfg.interval, chunk);
        const auto final_score = engine.finish();
        ASSERT_EQ(final_score.lanes.size(), batch.replications.size())
            << core::method_name(method) << " chunk " << chunk;
        EXPECT_EQ(final_score.packets_seen, cfg.interval.size());
        for (std::size_t r = 0; r < batch.replications.size(); ++r) {
          const auto& stream_m = final_score.lanes[r].metrics;
          const auto& batch_m = batch.replications[r];
          // Exact double equality: the streaming path must reproduce the
          // batch scores bit-for-bit, not approximately.
          EXPECT_EQ(stream_m.phi, batch_m.phi)
              << core::method_name(method) << "/"
              << core::target_name(target) << " r" << r << " chunk " << chunk;
          EXPECT_EQ(stream_m.chi2, batch_m.chi2);
          EXPECT_EQ(stream_m.significance, batch_m.significance);
          EXPECT_EQ(stream_m.sample_n, batch_m.sample_n);
          EXPECT_EQ(stream_m.population_n, batch_m.population_n);
        }
      }
    }
  }
}

TEST(StreamEngine, SelectedIndicesMatchBatchSamplers) {
  for (const auto method : kAllMethods) {
    const auto cfg = cell_config(method, core::Target::kPacketSize);
    EngineOptions options;
    options.collect_indices = true;
    Engine engine(lanes_for_cell(cfg), options);
    feed_in_chunks(engine, cfg.interval, 64);
    (void)engine.finish();

    ASSERT_EQ(engine.lane_indices().size(), 3u);
    for (int r = 0; r < cfg.replications; ++r) {
      auto sampler = core::make_sampler(exper::replication_spec(cfg, r));
      const auto want = core::draw_sample_indices(cfg.interval, *sampler);
      EXPECT_EQ(engine.lane_indices()[static_cast<std::size_t>(r)], want)
          << core::method_name(method) << " r" << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline: ring + producer thread change nothing.
// ---------------------------------------------------------------------------

TEST(StreamEngine, PipelineMatchesDirectFeed) {
  const auto cfg =
      cell_config(core::Method::kSystematicCount, core::Target::kPacketSize);

  Engine direct(lanes_for_cell(cfg));
  feed_in_chunks(direct, cfg.interval, 97);
  const auto direct_score = direct.finish();

  Engine piped(lanes_for_cell(cfg));
  TraceSource source(cfg.interval);
  PipelineOptions options;
  options.chunk_packets = 97;
  options.ring_capacity = 4;
  const auto report = run_pipeline(source, piped, options);
  ASSERT_TRUE(report.ok()) << report.status.to_string();
  EXPECT_EQ(report.packets, cfg.interval.size());
  const auto piped_score = piped.finish();

  ASSERT_EQ(piped_score.lanes.size(), direct_score.lanes.size());
  for (std::size_t i = 0; i < direct_score.lanes.size(); ++i) {
    EXPECT_EQ(piped_score.lanes[i].metrics.phi,
              direct_score.lanes[i].metrics.phi);
    EXPECT_EQ(piped_score.lanes[i].metrics.sample_n,
              direct_score.lanes[i].metrics.sample_n);
  }
}

TEST(StreamEngine, PipelineSurfacesCancellation) {
  const auto cfg =
      cell_config(core::Method::kSystematicCount, core::Target::kPacketSize);
  Engine engine(lanes_for_cell(cfg));
  TraceSource source(cfg.interval);
  util::CancelToken cancel;
  cancel.cancel();
  PipelineOptions options;
  options.cancel = &cancel;
  const auto report = run_pipeline(source, engine, options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kCancelled);
}

TEST(StreamEngine, FeedPollsCancelToken) {
  const auto cfg =
      cell_config(core::Method::kSystematicCount, core::Target::kPacketSize);
  util::CancelToken cancel;
  cancel.cancel();
  EngineOptions options;
  options.cancel = &cancel;
  Engine engine(lanes_for_cell(cfg), options);
  EXPECT_THROW(feed_in_chunks(engine, cfg.interval, 4096), StatusError);
}

// ---------------------------------------------------------------------------
// Rolling windows.
// ---------------------------------------------------------------------------

TEST(StreamEngine, AllSelectingLaneScoresZeroPhiInEveryWindow) {
  // k=1 systematic selects every packet, so each window's sample histogram
  // equals its population histogram and phi is exactly 0 — an oracle that
  // needs no independent reimplementation of the window arithmetic.
  auto& ex = experiment();
  exper::CellConfig cfg;
  cfg.method = core::Method::kSystematicCount;
  cfg.granularity = 1;
  cfg.interval = ex.full();
  cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
  cfg.replications = 1;
  cfg.base_seed = 5;

  for (const auto target : kBothTargets) {
    cfg.target = target;
    EngineOptions options;
    options.window = MicroDuration::from_seconds(10.0);
    options.stride = MicroDuration::from_seconds(10.0);
    Engine engine(lanes_for_cell(cfg), options);
    std::uint64_t snapshots = 0;
    std::uint64_t last_tick = 0;
    engine.on_snapshot([&](const WindowScore& w) {
      ++snapshots;
      EXPECT_EQ(w.tick, last_tick + 1);  // in order, none skipped
      last_tick = w.tick;
      EXPECT_FALSE(w.is_final);
      ASSERT_EQ(w.lanes.size(), 1u);
      EXPECT_EQ(w.lanes[0].metrics.phi, 0.0) << "tick " << w.tick;
      EXPECT_EQ(w.lanes[0].metrics.chi2, 0.0);
    });
    feed_in_chunks(engine, cfg.interval, 256);
    const auto final_score = engine.finish();
    EXPECT_TRUE(final_score.is_final);
    EXPECT_EQ(final_score.lanes[0].metrics.phi, 0.0);
    // A ~2-minute trace with a 10s stride must produce ~11 interior ticks.
    EXPECT_GE(snapshots, 9u);
    EXPECT_LE(snapshots, 13u);
  }
}

TEST(StreamEngine, WholeStreamWindowReproducesDrainMode) {
  const auto cfg =
      cell_config(core::Method::kStratifiedCount, core::Target::kPacketSize);

  Engine drain(lanes_for_cell(cfg));
  feed_in_chunks(drain, cfg.interval, 512);
  const auto drain_score = drain.finish();

  EngineOptions windowed_options;
  windowed_options.window = MicroDuration::from_seconds(3600.0);
  Engine windowed(lanes_for_cell(cfg), windowed_options);
  feed_in_chunks(windowed, cfg.interval, 512);
  const auto windowed_score = windowed.finish();

  ASSERT_EQ(windowed_score.lanes.size(), drain_score.lanes.size());
  for (std::size_t i = 0; i < drain_score.lanes.size(); ++i) {
    EXPECT_EQ(windowed_score.lanes[i].metrics.phi,
              drain_score.lanes[i].metrics.phi);
    EXPECT_EQ(windowed_score.lanes[i].metrics.sample_n,
              drain_score.lanes[i].metrics.sample_n);
  }
}

TEST(StreamEngine, WindowedMemoryIsBoundedDrainHoldsNothing) {
  const auto cfg =
      cell_config(core::Method::kSystematicCount, core::Target::kPacketSize);

  Engine drain(lanes_for_cell(cfg));
  feed_in_chunks(drain, cfg.interval, 1024);
  (void)drain.finish();
  EXPECT_EQ(drain.window_packets_peak(), 0u);  // drain mode holds no packets

  EngineOptions options;
  options.window = MicroDuration::from_seconds(5.0);
  options.stride = MicroDuration::from_seconds(5.0);
  Engine windowed(lanes_for_cell(cfg), options);
  feed_in_chunks(windowed, cfg.interval, 1024);
  (void)windowed.finish();
  EXPECT_GT(windowed.window_packets_peak(), 0u);
  // 2 minutes of packets, 5+5 second window+stride scope: the peak must be
  // a small fraction of the stream.
  EXPECT_LT(windowed.window_packets_peak(), cfg.interval.size() / 4);
}

TEST(StreamEngine, CurrentScoresWithoutConsuming) {
  const auto cfg =
      cell_config(core::Method::kSystematicCount, core::Target::kPacketSize);
  Engine engine(lanes_for_cell(cfg));
  const auto packets = cfg.interval.packets();
  engine.feed(packets.subspan(0, packets.size() / 2));
  const auto mid = engine.current();
  EXPECT_EQ(mid.packets_seen, packets.size() / 2);
  engine.feed(packets.subspan(packets.size() / 2));
  const auto final_score = engine.finish();
  EXPECT_EQ(final_score.packets_seen, packets.size());
  // current() at the midpoint scored a strict prefix: a different (smaller)
  // population than the final score.
  EXPECT_LT(mid.lanes[0].metrics.population_n,
            final_score.lanes[0].metrics.population_n);
}

// ---------------------------------------------------------------------------
// Validation and edge cases.
// ---------------------------------------------------------------------------

TEST(StreamEngine, EmptyStreamFinishesWithZeroedScore) {
  const auto cfg =
      cell_config(core::Method::kSystematicCount, core::Target::kPacketSize);
  Engine engine(lanes_for_cell(cfg));
  const auto final_score = engine.finish();
  // Nothing ever arrived: a zeroed final score with no lane rows (there is
  // no population to score against), not a crash or a fabricated result.
  EXPECT_TRUE(final_score.is_final);
  EXPECT_EQ(final_score.packets_seen, 0u);
  EXPECT_TRUE(final_score.lanes.empty());
  EXPECT_THROW((void)engine.finish(), std::logic_error);
}

TEST(StreamEngine, MoreThanMaxLanesThrows) {
  auto cfg = cell_config(core::Method::kSystematicCount,
                         core::Target::kPacketSize);
  cfg.granularity = 128;
  cfg.replications = static_cast<int>(Engine::kMaxLanes) + 1;
  EXPECT_THROW(Engine(lanes_for_cell(cfg)), std::invalid_argument);
}

TEST(StreamEngine, NegativeWindowThrows) {
  const auto cfg =
      cell_config(core::Method::kSystematicCount, core::Target::kPacketSize);
  EngineOptions options;
  options.window = MicroDuration{-1};
  EXPECT_THROW(Engine(lanes_for_cell(cfg), options), std::invalid_argument);
}

TEST(StreamEngine, TimeOrderViolationThrows) {
  const auto cfg =
      cell_config(core::Method::kSystematicCount, core::Target::kPacketSize);
  Engine engine(lanes_for_cell(cfg));
  std::vector<trace::PacketRecord> packets(2);
  packets[0].timestamp = MicroTime{2000};
  packets[0].size = 100;
  packets[1].timestamp = MicroTime{1000};  // runs backwards
  packets[1].size = 100;
  EXPECT_THROW(engine.feed(packets), std::invalid_argument);
}

TEST(StreamEngine, FeedAfterFinishThrows) {
  const auto cfg =
      cell_config(core::Method::kSystematicCount, core::Target::kPacketSize);
  Engine engine(lanes_for_cell(cfg));
  (void)engine.finish();
  std::vector<trace::PacketRecord> packets(1);
  packets[0].timestamp = MicroTime{1};
  EXPECT_THROW(engine.feed(packets), std::logic_error);
}

TEST(StreamEngine, PopulationOverrideReplacesIntervalSize) {
  auto cfg = cell_config(core::Method::kSimpleRandom,
                         core::Target::kPacketSize);
  const auto lanes = lanes_for_cell(cfg, 12345);
  for (const auto& lane : lanes) EXPECT_EQ(lane.spec.population, 12345u);
  const auto defaults = lanes_for_cell(cfg);
  for (const auto& lane : defaults) {
    EXPECT_EQ(lane.spec.population, cfg.interval.size());
  }
}

}  // namespace
}  // namespace netsample::stream
