#include "util/asciichart.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace netsample {
namespace {

TEST(AsciiChart, RendersSingleSeries) {
  ChartSeries s{"phi", '*', {1.0, 2.0, 3.0, 4.0}};
  const auto out = render_chart({s}, {});
  // Four plotted points plus the legend glyph.
  EXPECT_EQ(std::count(out.begin(), out.end(), '*'), 5);
  // Legend mentions the series.
  EXPECT_NE(out.find("* phi"), std::string::npos);
  // Axis present.
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiChart, HighestValueOnTopRow) {
  ChartSeries s{"v", '*', {0.0, 10.0}};
  const auto out = render_chart({s}, {}, ChartOptions{.width = 10, .height = 5, .log_y = false, .x_label = ""});
  // First rendered line (top row) must contain the glyph for the max.
  const auto first_line = out.substr(0, out.find('\n'));
  EXPECT_NE(first_line.find('*'), std::string::npos);
}

TEST(AsciiChart, CollisionsMarkedWithX) {
  ChartSeries a{"a", 'a', {1.0, 5.0}};
  ChartSeries b{"b", 'b', {1.0, 9.0}};
  const auto out = render_chart({a, b}, {}, ChartOptions{.width = 8, .height = 6, .log_y = false, .x_label = ""});
  EXPECT_NE(out.find('x'), std::string::npos);  // shared point at (0, 1.0)
}

TEST(AsciiChart, LogScaleRequiresPositive) {
  ChartSeries s{"v", '*', {0.0, 1.0}};
  ChartOptions opts;
  opts.log_y = true;
  EXPECT_THROW((void)render_chart({s}, {}, opts), std::invalid_argument);
  s.y = {0.001, 1.0};
  EXPECT_NO_THROW((void)render_chart({s}, {}, opts));
}

TEST(AsciiChart, XTicksAppear) {
  ChartSeries s{"v", '*', {1.0, 2.0, 3.0}};
  const auto out = render_chart({s}, {"1/4", "1/8", "1/16"});
  EXPECT_NE(out.find("1/4"), std::string::npos);
  EXPECT_NE(out.find("1/16"), std::string::npos);
}

TEST(AsciiChart, Validation) {
  EXPECT_THROW((void)render_chart({}, {}), std::invalid_argument);
  ChartSeries empty{"e", '*', {}};
  EXPECT_THROW((void)render_chart({empty}, {}), std::invalid_argument);
  ChartSeries a{"a", 'a', {1.0, 2.0}};
  ChartSeries ragged{"r", 'r', {1.0}};
  EXPECT_THROW((void)render_chart({a, ragged}, {}), std::invalid_argument);
  EXPECT_THROW((void)render_chart({a}, {"only-one-tick"}),
               std::invalid_argument);
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  ChartSeries s{"flat", '*', {5.0, 5.0, 5.0}};
  EXPECT_NO_THROW((void)render_chart({s}, {}));
}

TEST(AsciiChart, XLabelPrinted) {
  ChartSeries s{"v", '*', {1.0, 2.0}};
  ChartOptions opts;
  opts.x_label = "minutes";
  const auto out = render_chart({s}, {}, opts);
  EXPECT_NE(out.find("minutes"), std::string::npos);
}

}  // namespace
}  // namespace netsample
