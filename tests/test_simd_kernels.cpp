// Randomized differential suite for the core::simd dispatch layer and its
// kernels. The contract under test (core/simd/simd.h): every variant is
// BIT-IDENTICAL to the scalar reference — same bin ids (including values
// sitting exactly on bin edges), same histogram counts, same selected index
// sets (the batched RNG kernels replay the streaming samplers' raw-word
// sequence), hence the same phi/chi-squared to the last bit over the full
// figure grid at any --jobs level. "Close" is a bug.
//
// Vector-ISA cases self-skip on machines where no vector variant is
// available; the dispatch/threshold/fallback cases run everywhere.
#include "core/simd/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/select_indices.h"
#include "core/targets.h"
#include "core/trace_cache.h"
#include "exper/experiment.h"
#include "exper/parallel.h"
#include "exper/runner.h"
#include "stats/histogram.h"
#include "util/rng.h"

namespace netsample {
namespace {

namespace simd = core::simd;

/// Scoped variant routing: restores the environment default on exit so test
/// order can't leak a forced variant into other tests (same shape as
/// test_fastpath.cpp's ScanGuard).
struct VariantGuard {
  explicit VariantGuard(simd::Variant v) { simd::force_variant(v); }
  ~VariantGuard() { simd::clear_variant_override(); }
};

/// The vector variants this machine can actually execute (avx2 on x86-64
/// with AVX2, neon on aarch64; possibly empty in an emulator).
std::vector<simd::Variant> vector_variants() {
  std::vector<simd::Variant> out;
  for (auto v : {simd::Variant::kAvx2, simd::Variant::kNeon}) {
    if (simd::variant_available(v)) out.push_back(v);
  }
  return out;
}

// --------------------------------------------------------------------------
// Dispatch plumbing.

TEST(SimdDispatch, VariantNamesRoundTrip) {
  for (auto v : {simd::Variant::kScalar, simd::Variant::kAvx2,
                 simd::Variant::kNeon}) {
    const auto parsed = simd::parse_variant(simd::variant_name(v));
    ASSERT_TRUE(parsed.has_value()) << simd::variant_name(v);
    EXPECT_EQ(*parsed, v);
  }
  EXPECT_FALSE(simd::parse_variant("").has_value());
  EXPECT_FALSE(simd::parse_variant("sse2").has_value());
  EXPECT_FALSE(simd::parse_variant("AVX2").has_value());  // case-sensitive
}

TEST(SimdDispatch, ScalarIsAlwaysAvailableAndAllNull) {
  EXPECT_TRUE(simd::variant_compiled(simd::Variant::kScalar));
  EXPECT_TRUE(simd::variant_available(simd::Variant::kScalar));
  // Scalar code lives at the call sites; the scalar table must be all-null
  // so the untouched reference path runs.
  const simd::KernelTable& t = simd::kernels_for(simd::Variant::kScalar);
  EXPECT_EQ(t.classify_u32, nullptr);
  EXPECT_EQ(t.classify_gaps_u64, nullptr);
  EXPECT_EQ(t.accumulate_u8, nullptr);
  EXPECT_EQ(t.stratified_count, nullptr);
  EXPECT_EQ(t.simple_random, nullptr);
}

TEST(SimdDispatch, ForceBeatsDefaultAndClearRestoresIt) {
  const simd::Variant before = simd::active_variant();
  {
    VariantGuard guard(simd::Variant::kScalar);
    EXPECT_EQ(simd::active_variant(), simd::Variant::kScalar);
  }
  EXPECT_EQ(simd::active_variant(), before);
}

TEST(SimdDispatch, UnavailableVariantResolvesToScalarNeverAnotherIsa) {
  for (auto v : {simd::Variant::kAvx2, simd::Variant::kNeon}) {
    if (simd::variant_available(v)) continue;
    VariantGuard guard(v);
    EXPECT_EQ(simd::active_variant(), simd::Variant::kScalar)
        << "forcing unavailable " << simd::variant_name(v);
  }
}

TEST(SimdDispatch, BestVariantIsAvailableAndVectorTablesNonEmpty) {
  EXPECT_TRUE(simd::variant_available(simd::best_variant()));
  for (auto v : vector_variants()) {
    const simd::KernelTable& t = simd::kernels_for(v);
    // Every compiled vector variant provides at least the classify pair.
    EXPECT_NE(t.classify_u32, nullptr) << simd::variant_name(v);
    EXPECT_NE(t.classify_gaps_u64, nullptr) << simd::variant_name(v);
    EXPECT_NE(t.accumulate_u8, nullptr) << simd::variant_name(v);
  }
}

// --------------------------------------------------------------------------
// Edge -> integer threshold conversion.

TEST(SimdThresholds, MatchesHistogramBinIndexAroundEveryEdge) {
  for (auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    const std::vector<double> edges = core::paper_bin_edges(target);
    const auto thr = simd::integer_thresholds(edges);
    ASSERT_TRUE(thr.has_value());
    ASSERT_EQ(thr->size(), edges.size());
    const stats::Histogram layout{edges};
    for (double e : edges) {
      // Probe exactly on the edge and one integer either side: the
      // boundary-value packets the compare ladder must not misplace.
      for (std::int64_t d : {-1, 0, 1}) {
        const auto v = static_cast<std::uint64_t>(e) + d;
        std::size_t got = 0;
        for (std::uint64_t t : *thr) got += (v >= t) ? 1 : 0;
        EXPECT_EQ(got, layout.bin_index(static_cast<double>(v)))
            << "edge " << e << " probe " << v;
      }
    }
  }
}

TEST(SimdThresholds, FractionalEdgesUseCeilSemantics) {
  // v >= ceil(e) iff v >= e for integer v: edge 2.5 must become 3.
  const std::vector<double> edges = {2.5};
  const auto thr = simd::integer_thresholds(edges);
  ASSERT_TRUE(thr.has_value());
  EXPECT_EQ((*thr)[0], 3u);
}

TEST(SimdThresholds, UnrepresentableEdgesDecline) {
  EXPECT_FALSE(simd::integer_thresholds(std::vector<double>{-1.0}).has_value());
  EXPECT_FALSE(simd::integer_thresholds(
                   std::vector<double>{std::numeric_limits<double>::infinity()})
                   .has_value());
  EXPECT_FALSE(simd::integer_thresholds(
                   std::vector<double>{std::nan("")}).has_value());
  EXPECT_FALSE(
      simd::integer_thresholds(std::vector<double>{9.3e18}).has_value());
  // u32 narrowing declines thresholds beyond 2^32 - 1.
  EXPECT_TRUE(simd::integer_thresholds(std::vector<double>{4.0e9}).has_value());
  EXPECT_FALSE(
      simd::integer_thresholds_u32(std::vector<double>{5.0e9}).has_value());
}

// --------------------------------------------------------------------------
// Classify kernels vs stats::Histogram, including edge-exact values and
// sub-vector-width tails.

class SimdKernelsTest : public ::testing::TestWithParam<simd::Variant> {};

INSTANTIATE_TEST_SUITE_P(
    AvailableVariants, SimdKernelsTest,
    ::testing::ValuesIn(vector_variants().empty()
                            ? std::vector<simd::Variant>{simd::Variant::kScalar}
                            : vector_variants()),
    [](const ::testing::TestParamInfo<simd::Variant>& info) {
      return simd::variant_name(info.param);
    });

TEST_P(SimdKernelsTest, ClassifyU32MatchesHistogramBinIndex) {
  if (GetParam() == simd::Variant::kScalar) GTEST_SKIP() << "no vector ISA";
  const auto classify = simd::kernels_for(GetParam()).classify_u32;
  ASSERT_NE(classify, nullptr);

  const std::vector<double> edges = core::paper_bin_edges(
      core::Target::kPacketSize);
  const auto thr = simd::integer_thresholds_u32(edges);
  ASSERT_TRUE(thr.has_value());
  const stats::Histogram layout{edges};

  Rng rng(7);
  // Every length from empty through two full vectors plus a tail, then a
  // large buffer: tails and alignment can't hide.
  for (std::size_t n = 0; n <= 33; ++n) {
    for (int round = 0; round < 8; ++round) {
      std::vector<std::uint32_t> values(n);
      for (auto& v : values) {
        if (rng.uniform_below(4) == 0 && !edges.empty()) {
          // Land exactly on an edge or one off it.
          const double e = edges[rng.uniform_below(edges.size())];
          v = static_cast<std::uint32_t>(e) +
              static_cast<std::uint32_t>(rng.uniform_below(3)) - 1;
        } else {
          v = static_cast<std::uint32_t>(rng.uniform_below(65536));
        }
      }
      std::vector<std::uint8_t> out(n, 0xEE);
      classify(values.data(), n, thr->data(), thr->size(), out.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], layout.bin_index(static_cast<double>(values[i])))
            << "n=" << n << " i=" << i << " v=" << values[i];
      }
    }
  }
  std::vector<std::uint32_t> big(4096);
  for (auto& v : big) v = static_cast<std::uint32_t>(rng.uniform_below(3000));
  std::vector<std::uint8_t> out(big.size());
  classify(big.data(), big.size(), thr->data(), thr->size(), out.data());
  for (std::size_t i = 0; i < big.size(); ++i) {
    ASSERT_EQ(out[i], layout.bin_index(static_cast<double>(big[i]))) << i;
  }
}

TEST_P(SimdKernelsTest, ClassifyGapsMatchesHistogramBinIndex) {
  if (GetParam() == simd::Variant::kScalar) GTEST_SKIP() << "no vector ISA";
  const auto classify = simd::kernels_for(GetParam()).classify_gaps_u64;
  ASSERT_NE(classify, nullptr);

  const std::vector<double> edges =
      core::paper_bin_edges(core::Target::kInterarrivalTime);
  const auto thr = simd::integer_thresholds(edges);
  ASSERT_TRUE(thr.has_value());
  const stats::Histogram layout{edges};

  Rng rng(11);
  for (std::size_t n = 0; n <= 33; ++n) {
    for (int round = 0; round < 8; ++round) {
      std::vector<std::uint64_t> ts(n);
      std::uint64_t t = rng.uniform_below(10000);
      for (auto& x : ts) {
        x = t;
        // Mix zero gaps, edge-exact gaps, and random gaps.
        const std::uint64_t roll = rng.uniform_below(4);
        if (roll == 0) {
          // burst: zero gap
        } else if (roll == 1 && !thr->empty()) {
          const std::uint64_t e = (*thr)[rng.uniform_below(thr->size())];
          t += e + rng.uniform_below(3) - 1;
        } else {
          t += rng.uniform_below(10000);
        }
      }
      std::vector<std::uint8_t> out(n, 0xEE);
      classify(ts.data(), n, thr->data(), thr->size(), out.data());
      if (n > 0) {
        EXPECT_EQ(out[0], 0) << "out[0] is a placeholder";
      }
      for (std::size_t i = 1; i < n; ++i) {
        ASSERT_EQ(out[i],
                  layout.bin_index(static_cast<double>(ts[i] - ts[i - 1])))
            << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST_P(SimdKernelsTest, AccumulateMatchesScalarGather) {
  if (GetParam() == simd::Variant::kScalar) GTEST_SKIP() << "no vector ISA";
  const auto accumulate = simd::kernels_for(GetParam()).accumulate_u8;
  ASSERT_NE(accumulate, nullptr);

  Rng rng(13);
  const std::size_t n_bins = 6;
  for (std::size_t n_pop : {1ul, 5ul, 64ul, 1000ul}) {
    std::vector<std::uint8_t> bins(n_pop);
    for (auto& b : bins) b = static_cast<std::uint8_t>(rng.uniform_below(n_bins));
    for (std::size_t n_idx = 0; n_idx <= 33; ++n_idx) {
      for (bool skip_rel0 : {false, true}) {
        std::vector<std::size_t> indices(n_idx);
        for (auto& ix : indices) ix = rng.uniform_below(n_pop);
        if (n_idx > 0 && rng.uniform_below(2) == 0) indices[0] = 0;

        std::vector<std::uint64_t> expected(n_bins, 0);
        for (std::size_t ix : indices) {
          if (skip_rel0 && ix == 0) continue;
          ++expected[bins[ix]];
        }
        std::vector<std::uint64_t> got(n_bins, 0);
        accumulate(bins.data(), indices.data(), indices.size(), skip_rel0,
                   got.data(), n_bins);
        ASSERT_EQ(got, expected)
            << "pop=" << n_pop << " idx=" << n_idx << " skip=" << skip_rel0;
      }
    }
  }
}

// --------------------------------------------------------------------------
// End-to-end bit-identity: select_indices and the cache under a forced
// vector variant vs the forced-scalar reference, over fuzzed traces/specs.

/// Same bursty fuzz traffic as test_select_indices.cpp: zero gaps, typical
/// gaps, and idle periods (the regimes where kernels branch differently).
trace::Trace fuzz_trace(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<trace::PacketRecord> v;
  v.reserve(n);
  std::uint64_t t = rng.uniform_below(5000);
  for (std::size_t i = 0; i < n; ++i) {
    trace::PacketRecord p;
    p.timestamp = MicroTime{t};
    p.size = static_cast<std::uint16_t>(28 + rng.uniform_below(1473));
    v.push_back(p);
    const std::uint64_t roll = rng.uniform_below(100);
    if (roll < 25) {
      // burst: next packet at the same microsecond
    } else if (roll < 85) {
      t += rng.uniform_below(3000);
    } else if (roll < 96) {
      t += 3000 + rng.uniform_below(20000);
    } else {
      t += 50000 + rng.uniform_below(500000);  // idle gap
    }
  }
  return trace::Trace(std::move(v));
}

TEST_P(SimdKernelsTest, CacheBinsBitIdenticalToScalarBuild) {
  if (GetParam() == simd::Variant::kScalar) GTEST_SKIP() << "no vector ISA";
  const trace::Trace t = fuzz_trace(101, 4097);  // off vector width on purpose
  std::unique_ptr<core::BinnedTraceCache> scalar, vec;
  {
    VariantGuard guard(simd::Variant::kScalar);
    scalar = std::make_unique<core::BinnedTraceCache>(t.view());
  }
  {
    VariantGuard guard(GetParam());
    vec = std::make_unique<core::BinnedTraceCache>(t.view());
  }
  ASSERT_EQ(scalar->size(), vec->size());
  for (std::size_t i = 0; i < scalar->size(); ++i) {
    ASSERT_EQ(scalar->size_bins()[i], vec->size_bins()[i]) << i;
    ASSERT_EQ(scalar->gap_bins()[i], vec->gap_bins()[i]) << i;
  }
}

TEST_P(SimdKernelsTest, SelectIndicesBitIdenticalAcrossFuzzedSpecs) {
  if (GetParam() == simd::Variant::kScalar) GTEST_SKIP() << "no vector ISA";
  const trace::Trace t = fuzz_trace(23, 6000);
  const core::BinnedTraceCache cache(t.view());
  const std::size_t n = cache.size();

  static const core::Method kMethods[] = {
      core::Method::kSystematicCount, core::Method::kStratifiedCount,
      core::Method::kSimpleRandom, core::Method::kSystematicTimer,
      core::Method::kStratifiedTimer};

  Rng rng(99);
  for (int round = 0; round < 400; ++round) {
    // Ragged sub-views so populations hit every residue mod vector width.
    const std::size_t b = rng.uniform_below(n / 2);
    const std::size_t e = b + 1 + rng.uniform_below(n - b);
    core::SamplerSpec spec;
    spec.method = kMethods[rng.uniform_below(5)];
    // k ladder biased toward the interesting cases: 1, powers of two,
    // exact divisors of the population, and k > N.
    switch (rng.uniform_below(4)) {
      case 0: spec.granularity = 1 + rng.uniform_below(8); break;
      case 1: spec.granularity = 1ull << rng.uniform_below(15); break;
      case 2: spec.granularity = 1 + rng.uniform_below(2 * (e - b) + 4); break;
      default: spec.granularity = e - b + 1 + rng.uniform_below(64); break;
    }
    spec.offset = rng.uniform_below(spec.granularity);
    spec.population = e - b;
    spec.mean_interarrival_usec = 1.0 + 4000.0 * rng.uniform01();
    spec.seed = rng();
    spec.expiry_policy = rng.uniform_below(2) == 0
                             ? core::ExpiryPolicy::kCoalesce
                             : core::ExpiryPolicy::kQueue;
    spec.timer_phase_usec = rng();

    std::vector<std::size_t> ref, got;
    {
      VariantGuard guard(simd::Variant::kScalar);
      ref = core::select_indices(spec, cache, b, e);
    }
    {
      VariantGuard guard(GetParam());
      got = core::select_indices(spec, cache, b, e);
    }
    ASSERT_EQ(got, ref) << core::method_name(spec.method)
                        << " k=" << spec.granularity << " seed=" << spec.seed
                        << " view=[" << b << "," << e << ")";
  }
}

TEST_P(SimdKernelsTest, SampleHistogramBitIdenticalAcrossVariants) {
  if (GetParam() == simd::Variant::kScalar) GTEST_SKIP() << "no vector ISA";
  const trace::Trace t = fuzz_trace(55, 5000);
  const core::BinnedTraceCache cache(t.view());

  Rng rng(5);
  for (int round = 0; round < 100; ++round) {
    const std::size_t b = rng.uniform_below(cache.size() / 2);
    const std::size_t e = b + 1 + rng.uniform_below(cache.size() - b);
    // Random index sets, possibly containing relative 0 and duplicates of
    // the kind a systematic sampler never emits — the kernel must not care.
    std::vector<std::size_t> idx(rng.uniform_below(400));
    for (auto& ix : idx) ix = rng.uniform_below(e - b);
    std::sort(idx.begin(), idx.end());

    for (auto target :
         {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
      stats::Histogram ref{{}}, got{{}};
      {
        VariantGuard guard(simd::Variant::kScalar);
        ref = cache.sample_histogram(target, idx, b);
      }
      {
        VariantGuard guard(GetParam());
        got = cache.sample_histogram(target, idx, b);
      }
      ASSERT_EQ(std::vector<std::uint64_t>(got.counts().begin(),
                                           got.counts().end()),
                std::vector<std::uint64_t>(ref.counts().begin(),
                                           ref.counts().end()))
          << "target=" << static_cast<int>(target) << " view=[" << b << ","
          << e << ") n_idx=" << idx.size();
    }
  }
}

// --------------------------------------------------------------------------
// Full-grid phi bit-identity: scalar vs best vector variant vs legacy scan,
// serial and threaded. The sweep-level version of the kernel contract.

class SimdGridTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ex_ = new exper::Experiment(23, 2.0); }
  static void TearDownTestSuite() {
    delete ex_;
    ex_ = nullptr;
  }

  static std::vector<exper::GridTask> small_grid() {
    std::vector<exper::GridTask> tasks;
    exper::CellConfig base;
    base.interval = ex_->interval(90.0);
    base.mean_interarrival_usec = ex_->mean_interarrival_usec();
    base.cache = &ex_->binned_cache();
    for (auto target :
         {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
      for (std::uint64_t k : exper::granularity_ladder(4, 4096)) {
        for (auto m :
             {core::Method::kSystematicCount, core::Method::kStratifiedCount,
              core::Method::kSimpleRandom, core::Method::kSystematicTimer,
              core::Method::kStratifiedTimer}) {
          exper::CellConfig cfg = base;
          cfg.method = m;
          cfg.target = target;
          cfg.granularity = k;
          cfg.replications = 3;
          tasks.push_back({cfg, 0});
        }
      }
    }
    return tasks;
  }

  static void expect_bit_identical(const std::vector<exper::CellResult>& a,
                                   const std::vector<exper::CellResult>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].replications.size(), b[i].replications.size())
          << "cell " << i;
      for (std::size_t r = 0; r < a[i].replications.size(); ++r) {
        const auto& ma = a[i].replications[r];
        const auto& mb = b[i].replications[r];
        // Exact double equality: identical counts must flow into identical
        // metrics, bit for bit.
        EXPECT_EQ(ma.phi, mb.phi) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.chi2, mb.chi2) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.significance, mb.significance) << "cell " << i;
        EXPECT_EQ(ma.avg_norm_dev, mb.avg_norm_dev) << "cell " << i;
        EXPECT_EQ(ma.sample_n, mb.sample_n) << "cell " << i << " rep " << r;
      }
    }
  }

  static exper::Experiment* ex_;
};

exper::Experiment* SimdGridTest::ex_ = nullptr;

TEST_F(SimdGridTest, FullGridPhiBitIdenticalAcrossVariantsAndJobs) {
  const auto tasks = small_grid();

  std::vector<exper::CellResult> scalar1;
  {
    VariantGuard guard(simd::Variant::kScalar);
    exper::ParallelRunner serial(1);
    scalar1 = serial.run(tasks, 23);
  }
  {
    // --jobs 1 is the reference plan; 8 must match it bit for bit.
    VariantGuard guard(simd::Variant::kScalar);
    exper::ParallelRunner threaded(8);
    expect_bit_identical(scalar1, threaded.run(tasks, 23));
  }
  {
    VariantGuard guard(simd::best_variant());
    exper::ParallelRunner serial(1);
    exper::ParallelRunner threaded(8);
    expect_bit_identical(scalar1, serial.run(tasks, 23));
    expect_bit_identical(scalar1, threaded.run(tasks, 23));
  }
  {
    // The streaming samplers stay the oracle underneath both paths.
    VariantGuard guard(simd::best_variant());
    core::force_legacy_scan(true);
    exper::ParallelRunner serial(1);
    expect_bit_identical(scalar1, serial.run(tasks, 23));
    core::clear_legacy_scan_override();
  }
}

}  // namespace
}  // namespace netsample
