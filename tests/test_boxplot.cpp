#include "stats/boxplot.h"

#include <gtest/gtest.h>

namespace netsample::stats {
namespace {

TEST(Boxplot, BasicQuartiles) {
  const std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto b = boxplot(data);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 9.0);
  EXPECT_DOUBLE_EQ(b.median, 5.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 7.0);
  EXPECT_DOUBLE_EQ(b.mean, 5.0);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(Boxplot, WhiskersStopAtExtremesWithoutOutliers) {
  const std::vector<double> data = {1, 2, 3, 4, 5};
  const auto b = boxplot(data);
  EXPECT_DOUBLE_EQ(b.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 5.0);
}

TEST(Boxplot, OutlierBeyondFenceIsExcludedFromWhisker) {
  // IQR = 4 (q1=2.5... let's use an obvious case): data clustered 1..9 plus 100.
  std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8, 9, 100};
  const auto b = boxplot(data);
  EXPECT_LT(b.whisker_high, 100.0);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 100.0);
  EXPECT_DOUBLE_EQ(b.max, 100.0);
}

TEST(Boxplot, LowOutlier) {
  std::vector<double> data = {-100, 10, 11, 12, 13, 14, 15, 16, 17, 18};
  const auto b = boxplot(data);
  EXPECT_GT(b.whisker_low, -100.0);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], -100.0);
}

TEST(Boxplot, SingleValue) {
  const auto b = boxplot(std::vector<double>{3.5});
  EXPECT_DOUBLE_EQ(b.min, 3.5);
  EXPECT_DOUBLE_EQ(b.median, 3.5);
  EXPECT_DOUBLE_EQ(b.max, 3.5);
  EXPECT_DOUBLE_EQ(b.whisker_low, 3.5);
  EXPECT_DOUBLE_EQ(b.whisker_high, 3.5);
}

TEST(Boxplot, EmptyThrows) {
  EXPECT_THROW((void)boxplot({}), std::invalid_argument);
}

TEST(BoxplotAscii, ContainsGlyphs) {
  const std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto b = boxplot(data);
  const auto line = boxplot_ascii(b, 0.0, 10.0, 40);
  EXPECT_EQ(line.size(), 40u);
  EXPECT_NE(line.find('M'), std::string::npos);
  EXPECT_NE(line.find('['), std::string::npos);
  EXPECT_NE(line.find(']'), std::string::npos);
  EXPECT_NE(line.find('|'), std::string::npos);
}

TEST(BoxplotAscii, OutliersMarked) {
  std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8, 9, 100};
  const auto b = boxplot(data);
  const auto line = boxplot_ascii(b, 0.0, 110.0, 60);
  EXPECT_NE(line.find('o'), std::string::npos);
}

TEST(BoxplotAscii, DegenerateAxisDoesNotCrash) {
  const auto b = boxplot(std::vector<double>{5.0, 5.0});
  EXPECT_NO_THROW((void)boxplot_ascii(b, 5.0, 5.0, 20));
}

}  // namespace
}  // namespace netsample::stats
