#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <numeric>

namespace netsample::stats {
namespace {

TEST(Histogram, EdgesDefineLowerBoundBins) {
  // The paper's packet-size bins: <41, [41,181), >=181.
  Histogram h({41.0, 181.0});
  EXPECT_EQ(h.bin_count(), 3u);
  EXPECT_EQ(h.bin_index(40.0), 0u);
  EXPECT_EQ(h.bin_index(41.0), 1u);
  EXPECT_EQ(h.bin_index(180.0), 1u);
  EXPECT_EQ(h.bin_index(181.0), 2u);
  EXPECT_EQ(h.bin_index(1500.0), 2u);
}

TEST(Histogram, RejectsUnsortedOrDuplicateEdges) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, NoEdgesMeansSingleBin) {
  Histogram h{std::vector<double>{}};
  EXPECT_EQ(h.bin_count(), 1u);
  h.add(-1e9);
  h.add(1e9);
  EXPECT_EQ(h.count(0), 2u);
}

TEST(Histogram, AddWithWeight) {
  Histogram h({10.0});
  h.add(5.0, 7);
  h.add(15.0);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.total(), 8u);
}

TEST(Histogram, Proportions) {
  Histogram h({10.0});
  h.add(1.0);
  h.add(2.0);
  h.add(20.0);
  h.add(30.0);
  const auto p = h.proportions();
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

TEST(Histogram, ProportionsOfEmptyAreZero) {
  Histogram h({10.0});
  for (double p : h.proportions()) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(Histogram, ScaledCountsSumToTarget) {
  Histogram h({10.0, 20.0});
  h.add(5.0);
  h.add(15.0);
  h.add(15.0);
  const auto sc = h.scaled_counts(300.0);
  EXPECT_DOUBLE_EQ(std::accumulate(sc.begin(), sc.end(), 0.0), 300.0);
  EXPECT_DOUBLE_EQ(sc[0], 100.0);
  EXPECT_DOUBLE_EQ(sc[1], 200.0);
}

TEST(Histogram, BinLabels) {
  Histogram h({41.0, 181.0});
  EXPECT_EQ(h.bin_label(0), "< 41");
  EXPECT_EQ(h.bin_label(1), "[41, 181)");
  EXPECT_EQ(h.bin_label(2), ">= 181");
}

TEST(Histogram, ResetClearsCounts) {
  Histogram h({1.0});
  h.add(0.5);
  h.add(2.0);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.count(1), 0u);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a({5.0}), b({5.0});
  a.add(1.0);
  b.add(1.0);
  b.add(10.0);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(1), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(Histogram, MergeRejectsDifferentLayouts) {
  Histogram a({5.0}), b({6.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, EqualWidthLayout) {
  // NNStat's 50-byte packet-length histogram.
  auto h = Histogram::equal_width(50.0, 31);
  EXPECT_EQ(h.bin_count(), 32u);  // 31 edges -> 32 bins incl. (-inf, 0)
  EXPECT_EQ(h.bin_index(-1.0), 0u);
  EXPECT_EQ(h.bin_index(0.0), 1u);
  EXPECT_EQ(h.bin_index(49.0), 1u);
  EXPECT_EQ(h.bin_index(50.0), 2u);
  EXPECT_EQ(h.bin_index(1499.0), 30u);
  EXPECT_EQ(h.bin_index(1500.0), 31u);
}

TEST(Histogram, EqualWidthRejectsBadParams) {
  EXPECT_THROW(Histogram::equal_width(0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram::equal_width(10.0, 0), std::invalid_argument);
}

class HistogramPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPropertyTest, EveryValueLandsInExactlyOneBinAndTotalsAgree) {
  // Property: for any edge layout, adding N values yields total N and the
  // per-bin counts sum to N; bin_index is consistent with edges.
  const int seed = GetParam();
  std::vector<double> edges;
  for (int i = 0; i < seed % 7 + 1; ++i) {
    edges.push_back(static_cast<double>(i * (seed + 1)));
  }
  Histogram h(edges);
  std::uint64_t n = 0;
  for (int i = -50; i < 50; ++i) {
    h.add(static_cast<double>(i) * 1.5, static_cast<std::uint64_t>(seed % 3 + 1));
    n += static_cast<std::uint64_t>(seed % 3 + 1);
  }
  std::uint64_t sum = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.count(b);
  EXPECT_EQ(sum, n);
  EXPECT_EQ(h.total(), n);
}

INSTANTIATE_TEST_SUITE_P(Layouts, HistogramPropertyTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace netsample::stats
