// Randomized equivalence suite for the index-emitting kernels: for fuzzed
// SamplerSpecs — all five methods, random granularities (including k > N),
// seeds, offsets, phases, both expiry policies — over ragged sub-views of
// traces with bursts and long idle gaps, core::select_indices must return
// EXACTLY the index set the streaming samplers produce. The streaming
// hierarchy is the oracle; any divergence is a fast-path bug by definition.
#include "core/select_indices.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/samplers.h"
#include "core/trace_cache.h"
#include "util/rng.h"

namespace netsample::core {
namespace {

/// Bursty fuzz traffic: back-to-back packets (zero gaps), typical gaps, and
/// occasional idle periods many timer periods long (the regime where the
/// expiry policies and window coalescing actually differ).
trace::Trace fuzz_trace(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<trace::PacketRecord> v;
  v.reserve(n);
  std::uint64_t t = rng.uniform_below(5000);
  for (std::size_t i = 0; i < n; ++i) {
    trace::PacketRecord p;
    p.timestamp = MicroTime{t};
    p.size = static_cast<std::uint16_t>(28 + rng.uniform_below(1473));
    v.push_back(p);
    const std::uint64_t roll = rng.uniform_below(100);
    if (roll < 25) {
      // burst: next packet at the same microsecond
    } else if (roll < 85) {
      t += rng.uniform_below(3000);
    } else if (roll < 96) {
      t += 3000 + rng.uniform_below(20000);
    } else {
      t += 50000 + rng.uniform_below(500000);  // idle gap
    }
  }
  return trace::Trace(std::move(v));
}

trace::TraceView subview(trace::TraceView v, std::size_t b, std::size_t e) {
  return trace::TraceView(v.packets().subspan(b, e - b));
}

SamplerSpec fuzz_spec(Rng& rng, std::size_t view_size) {
  static const Method kMethods[] = {
      Method::kSystematicCount, Method::kStratifiedCount, Method::kSimpleRandom,
      Method::kSystematicTimer, Method::kStratifiedTimer};
  SamplerSpec spec;
  spec.method = kMethods[rng.uniform_below(5)];
  // Granularities from 1 up to ~2N, so k > N (sample rounds to one packet)
  // and k = 1 (select everything) both occur.
  spec.granularity = 1 + rng.uniform_below(2 * static_cast<std::uint64_t>(
                                                   view_size) + 4);
  spec.offset = rng.uniform_below(spec.granularity);
  spec.population = view_size;
  spec.mean_interarrival_usec = 1.0 + 4000.0 * rng.uniform01();
  spec.seed = rng();
  spec.expiry_policy = rng.uniform_below(2) == 0 ? ExpiryPolicy::kCoalesce
                                                 : ExpiryPolicy::kQueue;
  spec.timer_phase_usec = rng();  // reduced modulo the period by both paths
  return spec;
}

void expect_kernel_matches_streaming(const SamplerSpec& spec,
                                     const BinnedTraceCache& cache,
                                     std::size_t b, std::size_t e) {
  const auto view = subview(cache.base(), b, e);
  auto sampler = make_sampler(spec);
  const auto expected = draw_sample_indices(view, *sampler);
  const auto got = select_indices(spec, cache, b, e);
  EXPECT_EQ(got, expected) << method_name(spec.method) << " k="
                           << spec.granularity << " seed=" << spec.seed
                           << " offset=" << spec.offset << " phase="
                           << spec.timer_phase_usec << " policy="
                           << (spec.expiry_policy == ExpiryPolicy::kCoalesce
                                   ? "coalesce"
                                   : "queue")
                           << " range=[" << b << "," << e << ")";
}

TEST(SelectIndices, FuzzedSpecsMatchStreamingSamplersExactly) {
  const auto t = fuzz_trace(2024, 4000);
  const BinnedTraceCache cache(t.view());
  Rng rng(7);
  for (int trial = 0; trial < 400; ++trial) {
    // Ragged interval edges, including prefixes, suffixes and tiny slices.
    std::size_t b = rng.uniform_below(t.size());
    std::size_t e = 1 + rng.uniform_below(t.size());
    if (b >= e) std::swap(b, e);
    if (b == e) e = b + 1;
    const auto spec = fuzz_spec(rng, e - b);
    expect_kernel_matches_streaming(spec, cache, b, e);
  }
}

TEST(SelectIndices, IdleGapHeavyTraceExercisesBothExpiryPolicies) {
  // Mostly idle trace: a few packets separated by many timer periods.
  std::vector<trace::PacketRecord> v;
  const std::uint64_t times[] = {0,      10,      20,      500000,
                                 500001, 2000000, 2000002, 9000000};
  for (auto ts : times) {
    trace::PacketRecord p;
    p.timestamp = MicroTime{ts};
    p.size = 100;
    v.push_back(p);
  }
  const trace::Trace t{std::move(v)};
  const BinnedTraceCache cache(t.view());
  for (auto policy : {ExpiryPolicy::kCoalesce, ExpiryPolicy::kQueue}) {
    for (std::uint64_t k : {1ULL, 2ULL, 5ULL, 100ULL}) {
      SamplerSpec spec;
      spec.method = Method::kSystematicTimer;
      spec.granularity = k;
      spec.mean_interarrival_usec = 700.0;
      spec.expiry_policy = policy;
      expect_kernel_matches_streaming(spec, cache, 0, t.size());
      expect_kernel_matches_streaming(spec, cache, 2, t.size() - 1);
    }
  }
  // Stratified timer on the same idle-gap trace: window coalescing.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 99ULL}) {
    SamplerSpec spec;
    spec.method = Method::kStratifiedTimer;
    spec.granularity = 3;
    spec.mean_interarrival_usec = 700.0;
    spec.seed = seed;
    expect_kernel_matches_streaming(spec, cache, 0, t.size());
  }
}

TEST(SelectIndices, EmptyIntervalSelectsNothing) {
  const auto t = fuzz_trace(5, 100);
  const BinnedTraceCache cache(t.view());
  for (auto m : {Method::kSystematicCount, Method::kStratifiedCount,
                 Method::kSystematicTimer, Method::kStratifiedTimer}) {
    SamplerSpec spec;
    spec.method = m;
    spec.granularity = 8;
    spec.mean_interarrival_usec = 1000.0;
    EXPECT_TRUE(select_indices(spec, cache, 40, 40).empty()) << method_name(m);
  }
  // Simple random over an empty interval: population 0 is invalid on both
  // paths (make_sampler throws the same way).
  SamplerSpec sr;
  sr.method = Method::kSimpleRandom;
  sr.granularity = 8;
  sr.population = 0;
  EXPECT_THROW((void)select_indices(sr, cache, 40, 40), std::invalid_argument);
  EXPECT_THROW((void)make_sampler(sr), std::invalid_argument);
}

TEST(SelectIndices, GranularityLargerThanPopulation) {
  const auto t = fuzz_trace(11, 50);
  const BinnedTraceCache cache(t.view());
  for (auto m : {Method::kSystematicCount, Method::kStratifiedCount,
                 Method::kSimpleRandom, Method::kSystematicTimer,
                 Method::kStratifiedTimer}) {
    SamplerSpec spec;
    spec.method = m;
    spec.granularity = 1000;  // k >> N
    spec.population = t.size();
    spec.mean_interarrival_usec = 500.0;
    spec.seed = 77;
    expect_kernel_matches_streaming(spec, cache, 0, t.size());
  }
}

TEST(SelectIndices, InvalidSpecsThrowLikeMakeSampler) {
  const auto t = fuzz_trace(3, 20);
  const BinnedTraceCache cache(t.view());
  SamplerSpec spec;

  spec.granularity = 0;
  EXPECT_THROW((void)select_indices(spec, cache, 0, 10), std::invalid_argument);

  spec.granularity = 4;
  spec.offset = 4;  // offset must be < k
  EXPECT_THROW((void)select_indices(spec, cache, 0, 10), std::invalid_argument);

  SamplerSpec timer;
  timer.method = Method::kSystematicTimer;
  timer.granularity = 4;
  timer.mean_interarrival_usec = 0.0;  // no mean interarrival
  EXPECT_THROW((void)select_indices(timer, cache, 0, 10),
               std::invalid_argument);
  // ... even over an empty range, exactly like make_sampler.
  EXPECT_THROW((void)select_indices(timer, cache, 5, 5), std::invalid_argument);

  EXPECT_THROW((void)select_indices(spec, cache, 15, 10), std::out_of_range);
  EXPECT_THROW((void)select_indices(spec, cache, 0, t.size() + 1),
               std::out_of_range);
}

TEST(SelectIndices, SystematicCountIsPureStride) {
  const auto t = fuzz_trace(8, 103);
  const BinnedTraceCache cache(t.view());
  SamplerSpec spec;
  spec.granularity = 10;
  spec.offset = 3;
  const auto idx = select_indices(spec, cache, 0, t.size());
  ASSERT_EQ(idx.size(), 10u);
  for (std::size_t i = 0; i < idx.size(); ++i) EXPECT_EQ(idx[i], 3 + 10 * i);
}

}  // namespace
}  // namespace netsample::core
