#include "net/checksum.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace netsample::net {
namespace {

// RFC 1071's worked example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2
// (before inversion), so the checksum is ~0xddf2 = 0x220d.
TEST(Checksum, Rfc1071WorkedExample) {
  const std::array<std::uint8_t, 8> data = {0x00, 0x01, 0xf2, 0x03,
                                            0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, EmptyBufferIsAllOnesInverted) {
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::array<std::uint8_t, 3> data = {0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300 -> sum 0x0402 -> ~ = 0xFBFD.
  EXPECT_EQ(internet_checksum(data), 0xFBFD);
}

TEST(Checksum, AccumulateChainsAcrossBuffers) {
  const std::array<std::uint8_t, 4> a = {0x12, 0x34, 0x56, 0x78};
  const std::array<std::uint8_t, 4> b = {0x9a, 0xbc, 0xde, 0xf0};
  std::vector<std::uint8_t> joined(a.begin(), a.end());
  joined.insert(joined.end(), b.begin(), b.end());

  std::uint32_t acc = checksum_accumulate(a);
  acc = checksum_accumulate(b, acc);
  EXPECT_EQ(checksum_finish(acc), internet_checksum(joined));
}

TEST(Checksum, CarryFoldsCorrectly) {
  // All-0xFF data exercises repeated carry folding.
  const std::vector<std::uint8_t> data(64, 0xFF);
  EXPECT_EQ(internet_checksum(data), 0x0000);
}

TEST(Checksum, ValidHeaderVerifiesToZero) {
  // A real IPv4 header with its correct checksum embedded (computed by
  // standard tooling): verifying should produce 0.
  std::array<std::uint8_t, 20> hdr = {0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40,
                                      0x00, 0x40, 0x06, 0x00, 0x00, 0xac, 0x10,
                                      0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c};
  const std::uint16_t csum = internet_checksum(hdr);
  hdr[10] = static_cast<std::uint8_t>(csum >> 8);
  hdr[11] = static_cast<std::uint8_t>(csum & 0xFF);
  EXPECT_EQ(internet_checksum(hdr), 0x0000);
}

TEST(Checksum, SingleBitErrorIsDetected) {
  std::array<std::uint8_t, 20> hdr = {0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40,
                                      0x00, 0x40, 0x06, 0x00, 0x00, 0xac, 0x10,
                                      0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c};
  const std::uint16_t csum = internet_checksum(hdr);
  hdr[10] = static_cast<std::uint8_t>(csum >> 8);
  hdr[11] = static_cast<std::uint8_t>(csum & 0xFF);
  hdr[3] ^= 0x01;  // flip one bit
  EXPECT_NE(internet_checksum(hdr), 0x0000);
}

}  // namespace
}  // namespace netsample::net
