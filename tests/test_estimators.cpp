#include "core/estimators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace netsample::core {
namespace {

TEST(EstimateTotal, ExpandsBySamplingFraction) {
  const auto e = estimate_total(200.0, 0.02);
  EXPECT_DOUBLE_EQ(e.value, 10000.0);
  EXPECT_LT(e.ci_low, e.value);
  EXPECT_GT(e.ci_high, e.value);
}

TEST(EstimateTotal, FullCensusHasNoUncertainty) {
  const auto e = estimate_total(500.0, 1.0);
  EXPECT_DOUBLE_EQ(e.value, 500.0);
  EXPECT_DOUBLE_EQ(e.ci_low, 500.0);
  EXPECT_DOUBLE_EQ(e.ci_high, 500.0);
}

TEST(EstimateTotal, ZeroSampleGivesZeroPoint) {
  const auto e = estimate_total(0.0, 0.1);
  EXPECT_DOUBLE_EQ(e.value, 0.0);
  EXPECT_DOUBLE_EQ(e.ci_low, 0.0);
}

TEST(EstimateTotal, Validation) {
  EXPECT_THROW((void)estimate_total(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)estimate_total(10.0, 1.5), std::invalid_argument);
  EXPECT_THROW((void)estimate_total(-1.0, 0.5), std::invalid_argument);
}

TEST(EstimateTotal, CoverageMatchesConfidence) {
  // Thin a known population of N=100000 at f=0.02 repeatedly; the CI should
  // contain N about 95% of the time.
  Rng rng(8);
  const double n_pop = 100000.0;
  const double f = 0.02;
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    double sampled = 0.0;
    // Binomial(N, f) via normal approximation is what the estimator assumes;
    // draw it exactly by thinning in chunks.
    for (int i = 0; i < 100; ++i) {
      // 1000 packets per chunk.
      for (int j = 0; j < 1000; ++j) {
        if (rng.bernoulli(f)) sampled += 1.0;
      }
    }
    const auto e = estimate_total(sampled, f, 0.95);
    if (e.ci_low <= n_pop && n_pop <= e.ci_high) ++covered;
  }
  EXPECT_NEAR(covered / static_cast<double>(trials), 0.95, 0.05);
}

TEST(EstimateWeightedTotal, PointEstimateExpands) {
  const std::vector<double> weights = {100, 200, 300};
  const auto e = estimate_weighted_total(weights, 0.1);
  EXPECT_DOUBLE_EQ(e.value, 6000.0);
  EXPECT_LT(e.ci_low, e.value);
  EXPECT_GT(e.ci_high, e.value);
}

TEST(EstimateWeightedTotal, CensusHasZeroWidth) {
  const std::vector<double> weights = {100, 200};
  const auto e = estimate_weighted_total(weights, 1.0);
  EXPECT_DOUBLE_EQ(e.value, 300.0);
  EXPECT_DOUBLE_EQ(e.ci_low, 300.0);
  EXPECT_DOUBLE_EQ(e.ci_high, 300.0);
}

TEST(EstimateWeightedTotal, HeavierWeightsWidenTheInterval) {
  // Same total weight, concentrated vs spread: concentration means more
  // variance in what sampling might miss.
  const std::vector<double> spread(100, 10.0);
  const std::vector<double> concentrated = {1000.0};
  const auto e_spread = estimate_weighted_total(spread, 0.1);
  const auto e_conc = estimate_weighted_total(concentrated, 0.1);
  EXPECT_DOUBLE_EQ(e_spread.value, e_conc.value);
  EXPECT_LT(e_spread.ci_high - e_spread.ci_low,
            e_conc.ci_high - e_conc.ci_low);
}

TEST(EstimateWeightedTotal, CoverageUnderBernoulliThinning) {
  Rng rng(12);
  // Population: 20000 packets with bimodal sizes (the paper's shape).
  std::vector<double> sizes;
  double truth = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double s = rng.bernoulli(0.4) ? 552.0 : 40.0;
    sizes.push_back(s);
    truth += s;
  }
  const double f = 0.05;
  int covered = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sampled;
    for (double s : sizes) {
      if (rng.bernoulli(f)) sampled.push_back(s);
    }
    const auto e = estimate_weighted_total(sampled, f, 0.95);
    if (e.ci_low <= truth && truth <= e.ci_high) ++covered;
  }
  EXPECT_NEAR(covered / static_cast<double>(trials), 0.95, 0.05);
}

TEST(EstimateWeightedTotal, Validation) {
  const std::vector<double> w = {1.0};
  EXPECT_THROW((void)estimate_weighted_total(w, 0.0), std::invalid_argument);
  EXPECT_THROW((void)estimate_weighted_total(w, 1.1), std::invalid_argument);
}

TEST(EstimateMean, PointAndInterval) {
  const std::vector<double> data = {10, 12, 8, 11, 9, 10, 12, 8};
  const auto e = estimate_mean(data);
  EXPECT_DOUBLE_EQ(e.value, 10.0);
  EXPECT_LT(e.ci_low, 10.0);
  EXPECT_GT(e.ci_high, 10.0);
}

TEST(EstimateMean, FpcTightensInterval) {
  std::vector<double> data;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) data.push_back(rng.uniform(0.0, 100.0));
  const auto infinite = estimate_mean(data, 0);
  const auto finite = estimate_mean(data, 1000);  // sampled half the population
  EXPECT_LT(finite.ci_high - finite.ci_low, infinite.ci_high - infinite.ci_low);
  EXPECT_DOUBLE_EQ(finite.value, infinite.value);
}

TEST(EstimateMean, CensusHasZeroWidth) {
  const std::vector<double> data = {1, 2, 3, 4};
  const auto e = estimate_mean(data, 4);
  EXPECT_NEAR(e.ci_high - e.ci_low, 0.0, 1e-12);
}

TEST(EstimateMean, EmptyThrows) {
  EXPECT_THROW((void)estimate_mean({}), std::invalid_argument);
}

TEST(EstimateMean, SingleValueHasZeroSpreadEstimate) {
  const std::vector<double> one = {7.0};
  const auto e = estimate_mean(one);
  EXPECT_DOUBLE_EQ(e.value, 7.0);
  EXPECT_DOUBLE_EQ(e.ci_low, 7.0);
}

TEST(EstimateProportion, WilsonInterval) {
  const auto e = estimate_proportion(30, 100);
  EXPECT_DOUBLE_EQ(e.value, 0.3);
  // Wilson bounds for 30/100 at 95%: about [0.218, 0.397].
  EXPECT_NEAR(e.ci_low, 0.218, 0.005);
  EXPECT_NEAR(e.ci_high, 0.397, 0.005);
}

TEST(EstimateProportion, ExtremesStayInUnitInterval) {
  const auto zero = estimate_proportion(0, 50);
  EXPECT_DOUBLE_EQ(zero.value, 0.0);
  EXPECT_GE(zero.ci_low, 0.0);
  EXPECT_GT(zero.ci_high, 0.0);  // Wilson never collapses at the boundary

  const auto all = estimate_proportion(50, 50);
  EXPECT_DOUBLE_EQ(all.value, 1.0);
  EXPECT_LT(all.ci_low, 1.0);
  EXPECT_LE(all.ci_high, 1.0);
}

TEST(EstimateProportion, Validation) {
  EXPECT_THROW((void)estimate_proportion(1, 0), std::invalid_argument);
  EXPECT_THROW((void)estimate_proportion(5, 4), std::invalid_argument);
}

TEST(EstimateProportion, CoverageMatchesConfidence) {
  Rng rng(10);
  const double p_true = 0.12;
  int covered = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t hits = 0;
    const std::uint64_t n = 400;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (rng.bernoulli(p_true)) ++hits;
    }
    const auto e = estimate_proportion(hits, n, 0.95);
    if (e.ci_low <= p_true && p_true <= e.ci_high) ++covered;
  }
  EXPECT_NEAR(covered / static_cast<double>(trials), 0.95, 0.04);
}

TEST(EstimateCategoryTotals, OnePerCategory) {
  const std::vector<double> counts = {10, 5, 0};
  const auto est = estimate_category_totals(counts, 0.1);
  ASSERT_EQ(est.size(), 3u);
  EXPECT_DOUBLE_EQ(est[0].value, 100.0);
  EXPECT_DOUBLE_EQ(est[1].value, 50.0);
  EXPECT_DOUBLE_EQ(est[2].value, 0.0);
  EXPECT_GT(est[0].ci_high, est[0].value);
}

}  // namespace
}  // namespace netsample::core
