#include "util/byteorder.h"

#include <gtest/gtest.h>

#include <array>

namespace netsample {
namespace {

TEST(ByteOrder, Swap16) {
  EXPECT_EQ(byteswap16(0x1234), 0x3412);
  EXPECT_EQ(byteswap16(0x0000), 0x0000);
  EXPECT_EQ(byteswap16(0xFFFF), 0xFFFF);
  EXPECT_EQ(byteswap16(0x00FF), 0xFF00);
}

TEST(ByteOrder, Swap32) {
  EXPECT_EQ(byteswap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(byteswap32(0x00000000u), 0x00000000u);
  EXPECT_EQ(byteswap32(0xFFFFFFFFu), 0xFFFFFFFFu);
  EXPECT_EQ(byteswap32(0x000000FFu), 0xFF000000u);
}

TEST(ByteOrder, SwapIsInvolution) {
  for (std::uint32_t v : {0x12345678u, 0xDEADBEEFu, 0x00000001u}) {
    EXPECT_EQ(byteswap32(byteswap32(v)), v);
  }
  for (std::uint16_t v : {std::uint16_t{0x1234}, std::uint16_t{0xBEEF}}) {
    EXPECT_EQ(byteswap16(byteswap16(v)), v);
  }
}

TEST(ByteOrder, LoadBigEndian) {
  const std::array<std::uint8_t, 4> buf = {0x12, 0x34, 0x56, 0x78};
  EXPECT_EQ(load_be16(buf.data()), 0x1234);
  EXPECT_EQ(load_be32(buf.data()), 0x12345678u);
}

TEST(ByteOrder, LoadLittleEndian) {
  const std::array<std::uint8_t, 4> buf = {0x78, 0x56, 0x34, 0x12};
  EXPECT_EQ(load_le16(buf.data()), 0x5678);
  EXPECT_EQ(load_le32(buf.data()), 0x12345678u);
}

TEST(ByteOrder, StoreLoadRoundTripBE) {
  std::array<std::uint8_t, 4> buf{};
  store_be32(buf.data(), 0xCAFEBABEu);
  EXPECT_EQ(load_be32(buf.data()), 0xCAFEBABEu);
  store_be16(buf.data(), 0xBEEF);
  EXPECT_EQ(load_be16(buf.data()), 0xBEEF);
}

TEST(ByteOrder, StoreLoadRoundTripLE) {
  std::array<std::uint8_t, 4> buf{};
  store_le32(buf.data(), 0xCAFEBABEu);
  EXPECT_EQ(load_le32(buf.data()), 0xCAFEBABEu);
  store_le16(buf.data(), 0xBEEF);
  EXPECT_EQ(load_le16(buf.data()), 0xBEEF);
}

TEST(ByteOrder, BEAndLEDifferOnAsymmetricValues) {
  std::array<std::uint8_t, 4> buf{};
  store_be32(buf.data(), 0x01020304u);
  EXPECT_EQ(load_le32(buf.data()), 0x04030201u);
}

}  // namespace
}  // namespace netsample
