// Tests for the observability layer (src/obs/): the enable gate actually
// gates, the registry hands out stable find-or-create handles, snapshots
// are sorted, the JSON exporter keeps the nondeterministic section last so
// masking is a pure truncation, the Prometheus export carries cumulative
// buckets, and spans chain parents within and across threads.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace netsample::obs {
namespace {

/// Every test runs against the process-global registry, so: skip when the
/// layer is compiled out (-DNETSAMPLE_OBS=OFF folds every mutator to a
/// no-op), start from zeroed values, and leave obs disabled afterwards so
/// unrelated tests never accumulate metrics by accident.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!detail::kCompiledIn) {
      GTEST_SKIP() << "observability compiled out (NETSAMPLE_OBS=OFF)";
    }
    registry().reset();
    Tracer::global().clear();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    Tracer::global().set_enabled(false);
    registry().reset();
    Tracer::global().clear();
  }
};

TEST_F(ObsTest, CounterMutatorsAreGatedByEnable) {
  Counter& c = registry().counter("test_gate_counter");
  c.add(3);
  c.increment();
  EXPECT_EQ(c.value(), 4u);

  set_enabled(false);
  c.add(100);
  c.increment();
  EXPECT_EQ(c.value(), 4u) << "mutations while disabled must be no-ops";

  set_enabled(true);
  c.increment();
  EXPECT_EQ(c.value(), 5u);
}

TEST_F(ObsTest, GaugeSetAddMax) {
  Gauge& g = registry().gauge("test_gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0) << "max() must not lower the value";
  g.max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);

  set_enabled(false);
  g.set(0.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST_F(ObsTest, HistogramObserveMatchesStatsHistogramBinning) {
  const std::vector<double> edges = {10.0, 100.0};
  HistogramMetric& h = registry().histogram("test_hist", edges);
  ASSERT_EQ(h.bin_count(), 3u);  // (-inf,10) [10,100) [100,inf)
  h.observe(5.0);
  h.observe(10.0);  // lower-bound edge lands in the second bin
  h.observe(99.9);
  h.observe(100.0);
  h.observe(1e9, 2);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 3u);
  EXPECT_EQ(h.total(), 6u);

  h.add_to_bin(0, 4);
  EXPECT_EQ(h.count(0), 5u);
  EXPECT_EQ(h.total(), 10u);

  h.reset();
  EXPECT_EQ(h.total(), 0u);
}

TEST_F(ObsTest, RegistryFindOrCreateReturnsTheSameObject) {
  Counter& a = registry().counter("test_same", Determinism::kDeterministic);
  // A later registration with a different tag still returns the original.
  Counter& b = registry().counter("test_same", Determinism::kNondeterministic);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.determinism(), Determinism::kDeterministic);

  HistogramMetric& h1 = registry().histogram("test_same_hist", {1.0, 2.0});
  HistogramMetric& h2 = registry().histogram("test_same_hist", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_THROW(registry().histogram("test_same_hist", {5.0}),
               std::invalid_argument)
      << "re-registering with different edges must be rejected";
}

TEST_F(ObsTest, HandlesSurviveResetAndKeepCounting) {
  Counter& c = registry().counter("test_survives_reset");
  c.add(9);
  registry().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST_F(ObsTest, SnapshotIsSortedByName) {
  // Names chosen to land in different shards and out of insertion order.
  registry().counter("test_zzz");
  registry().counter("test_aaa");
  registry().counter("test_mmm");
  const MetricsSnapshot snap = registry().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

TEST_F(ObsTest, ConcurrentAddsFromManyThreadsLoseNothing) {
  Counter& c = registry().counter("test_concurrent");
  HistogramMetric& h = registry().histogram("test_concurrent_hist", {50.0});
  constexpr int kThreads = 8, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.increment();
        h.observe(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(0), h.count(1));
}

TEST_F(ObsTest, JsonPutsNondeterministicSectionLast) {
  registry().counter("test_det_counter").add(7);
  registry().counter("test_nondet_counter", Determinism::kNondeterministic)
      .add(9);
  registry().histogram("test_det_hist", {1.0}).observe(0.5);
  const std::string json = to_json(registry().snapshot());

  const auto det = json.find("\"deterministic\"");
  const auto nondet = json.find("\"nondeterministic\"");
  ASSERT_NE(det, std::string::npos);
  ASSERT_NE(nondet, std::string::npos);
  EXPECT_LT(det, nondet) << "masking relies on nondeterministic being last";
  EXPECT_NE(json.find("\"netsample_metrics_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test_det_counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test_nondet_counter\": 9"), std::string::npos);
  EXPECT_LT(json.find("\"test_det_counter\""), nondet);
  EXPECT_GT(json.find("\"test_nondet_counter\""), nondet);
}

TEST_F(ObsTest, MaskedJsonDropsExactlyTheNondeterministicSection) {
  registry().counter("test_det_counter").add(1);
  registry().counter("test_nondet_counter", Determinism::kNondeterministic)
      .add(2);
  const std::string json = to_json(registry().snapshot());
  const std::string masked = masked_json(json);

  EXPECT_NE(masked.find("\"test_det_counter\""), std::string::npos);
  EXPECT_EQ(masked.find("\"test_nondet_counter\""), std::string::npos);
  EXPECT_EQ(masked.find("\"nondeterministic\""), std::string::npos);
  // Still a closed object, and masking is idempotent.
  EXPECT_EQ(masked.substr(masked.size() - 2), "}\n");
  EXPECT_EQ(masked_json(masked), masked);
  // Input without the marker passes through untouched.
  EXPECT_EQ(masked_json("{\"x\": 1}\n"), "{\"x\": 1}\n");
}

TEST_F(ObsTest, MaskedJsonIdenticalWhenOnlyNondeterministicValuesDiffer) {
  registry().counter("test_det_counter").add(5);
  Counter& nd =
      registry().counter("test_nondet_counter", Determinism::kNondeterministic);
  nd.add(100);
  const std::string a = masked_json(to_json(registry().snapshot()));
  nd.add(12345);  // "a different schedule"
  const std::string b = masked_json(to_json(registry().snapshot()));
  EXPECT_EQ(a, b);
}

TEST_F(ObsTest, PrometheusExportHasCumulativeBuckets) {
  HistogramMetric& h = registry().histogram("test_prom_hist", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(1.7);
  h.observe(9.0);
  registry().counter("test_prom_nd", Determinism::kNondeterministic).add(1);
  const std::string text = to_prometheus(registry().snapshot());

  EXPECT_NE(text.find("# TYPE test_prom_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"2\"} 3"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 4"), std::string::npos);
  EXPECT_NE(text.find("# netsample_determinism nondeterministic"),
            std::string::npos);
}

TEST_F(ObsTest, PrettyMetricsRendersBothSections) {
  registry().counter("test_pretty_counter").add(3);
  registry().gauge("test_pretty_gauge", Determinism::kNondeterministic)
      .set(1.5);
  const std::string json = to_json(registry().snapshot());
  const std::string pretty = pretty_metrics(json);
  EXPECT_NE(pretty.find("== deterministic"), std::string::npos);
  EXPECT_NE(pretty.find("== nondeterministic"), std::string::npos);
  EXPECT_NE(pretty.find("test_pretty_counter"), std::string::npos);
  EXPECT_NE(pretty.find("test_pretty_gauge"), std::string::npos);
}

TEST_F(ObsTest, WriteMetricsFileEmptyPathIsANoOp) {
  EXPECT_TRUE(write_metrics_file(""));
  EXPECT_TRUE(write_trace_file(""));
  EXPECT_FALSE(write_metrics_file("/nonexistent-dir-netsample/x.json"));
}

TEST_F(ObsTest, SpansChainParentsOnOneThread) {
  Tracer::global().set_enabled(true);
  {
    Span outer("outer");
    ASSERT_NE(outer.id(), 0u);
    EXPECT_EQ(Span::current_id(), outer.id());
    {
      Span inner("inner");
      EXPECT_EQ(Span::current_id(), inner.id());
    }
    EXPECT_EQ(Span::current_id(), outer.id());
  }
  EXPECT_EQ(Span::current_id(), 0u);

  const auto spans = Tracer::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by id: outer opened first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
}

TEST_F(ObsTest, SpansChainExplicitParentAcrossThreads) {
  Tracer::global().set_enabled(true);
  std::uint64_t parent = 0;
  {
    Span root("root");
    parent = root.id();
    std::thread worker([parent] { Span child("child", parent); });
    worker.join();
  }
  const auto spans = Tracer::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent_id, parent);
}

TEST_F(ObsTest, DisabledTracerMakesSpansInert) {
  ASSERT_FALSE(Tracer::global().enabled());
  {
    Span s("never-recorded");
    EXPECT_EQ(s.id(), 0u);
    EXPECT_EQ(Span::current_id(), 0u);
  }
  EXPECT_TRUE(Tracer::global().snapshot().empty());

  const std::string json = spans_to_json({});
  EXPECT_NE(json.find("\"netsample_trace_version\": 1"), std::string::npos);
}

}  // namespace
}  // namespace netsample::obs
