#include "net/headers.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/checksum.h"

namespace netsample::net {
namespace {

Ipv4Header make_ip(std::uint8_t proto) {
  Ipv4Header h;
  h.protocol = proto;
  h.src = Ipv4Address(132, 249, 1, 5);
  h.dst = Ipv4Address(192, 203, 230, 10);
  h.ttl = 30;
  h.identification = 0x1234;
  return h;
}

TEST(Ipv4, BuildParseRoundTrip) {
  const std::vector<std::uint8_t> payload(32, 0xAB);
  const auto wire = build_ipv4_packet(make_ip(6), payload);
  ASSERT_EQ(wire.size(), 20u + 32u);

  const auto parsed = parse_ipv4(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version, 4);
  EXPECT_EQ(parsed->ihl, 5);
  EXPECT_EQ(parsed->total_length, 52);
  EXPECT_EQ(parsed->protocol, 6);
  EXPECT_EQ(parsed->identification, 0x1234);
  EXPECT_EQ(parsed->src.to_string(), "132.249.1.5");
  EXPECT_EQ(parsed->dst.to_string(), "192.203.230.10");
  EXPECT_EQ(parsed->payload_bytes(), 32u);
}

TEST(Ipv4, BuiltPacketHasValidChecksum) {
  const auto wire = build_ipv4_packet(make_ip(17), std::vector<std::uint8_t>(8));
  EXPECT_TRUE(ipv4_checksum_ok(wire));
}

TEST(Ipv4, CorruptedChecksumIsRejected) {
  auto wire = build_ipv4_packet(make_ip(17), std::vector<std::uint8_t>(8));
  wire[15] ^= 0xFF;  // corrupt source address
  EXPECT_FALSE(ipv4_checksum_ok(wire));
}

TEST(Ipv4, ParseRejectsShortBuffer) {
  const std::vector<std::uint8_t> tiny(10, 0x45);
  const auto r = parse_ipv4(tiny);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(Ipv4, ParseRejectsNonV4) {
  std::vector<std::uint8_t> wire =
      build_ipv4_packet(make_ip(6), std::vector<std::uint8_t>(4));
  wire[0] = 0x65;  // version 6
  const auto r = parse_ipv4(wire);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Ipv4, ParseRejectsBadIhl) {
  std::vector<std::uint8_t> wire =
      build_ipv4_packet(make_ip(6), std::vector<std::uint8_t>(4));
  wire[0] = 0x43;  // IHL 3 words < minimum 5
  EXPECT_FALSE(parse_ipv4(wire).has_value());
}

TEST(Ipv4, ParseHandlesOptions) {
  Ipv4Header h = make_ip(6);
  h.ihl = 6;  // 24-byte header, 4 bytes of options (zeros)
  const auto wire = build_ipv4_packet(h, std::vector<std::uint8_t>(4, 0x11));
  const auto parsed = parse_ipv4(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ihl, 6);
  EXPECT_EQ(parsed->header_bytes(), 24u);
  EXPECT_EQ(parsed->payload_bytes(), 4u);
}

TEST(Ipv4, FragmentFieldsRoundTrip) {
  Ipv4Header h = make_ip(6);
  h.flags = 0x1;            // more fragments
  h.fragment_offset = 185;  // arbitrary 8-byte units
  const auto wire = build_ipv4_packet(h, {});
  const auto parsed = parse_ipv4(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flags, 0x1);
  EXPECT_EQ(parsed->fragment_offset, 185);
}

TEST(Tcp, BuildParseRoundTrip) {
  TcpHeader t;
  t.src_port = 1025;
  t.dst_port = 23;
  t.seq = 0xDEADBEEF;
  t.ack = 0x01020304;
  t.flags = TcpHeader::kAck | TcpHeader::kPsh;
  t.window = 4096;
  const std::vector<std::uint8_t> payload = {'h', 'i'};
  const auto seg = build_tcp_segment(t, Ipv4Address(1, 2, 3, 4),
                                     Ipv4Address(5, 6, 7, 8), payload);
  ASSERT_EQ(seg.size(), 22u);

  const auto parsed = parse_tcp(seg);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 1025);
  EXPECT_EQ(parsed->dst_port, 23);
  EXPECT_EQ(parsed->seq, 0xDEADBEEFu);
  EXPECT_EQ(parsed->ack, 0x01020304u);
  EXPECT_EQ(parsed->flags, TcpHeader::kAck | TcpHeader::kPsh);
  EXPECT_EQ(parsed->window, 4096);
  EXPECT_EQ(parsed->header_bytes(), 20u);
}

TEST(Tcp, ChecksumCoversPseudoHeader) {
  TcpHeader t;
  t.src_port = 20;
  t.dst_port = 1026;
  const auto seg = build_tcp_segment(t, Ipv4Address(1, 2, 3, 4),
                                     Ipv4Address(5, 6, 7, 8), {});
  // Verify by recomputing: sum(pseudo) + sum(segment) must finish to 0.
  std::uint8_t pseudo[12] = {1, 2, 3, 4, 5, 6, 7, 8, 0, 6, 0,
                             static_cast<std::uint8_t>(seg.size())};
  std::uint32_t acc = checksum_accumulate(pseudo);
  acc = checksum_accumulate(seg, acc);
  EXPECT_EQ(checksum_finish(acc), 0x0000);
}

TEST(Tcp, ParseRejectsShort) {
  EXPECT_FALSE(parse_tcp(std::vector<std::uint8_t>(12)).has_value());
}

TEST(Tcp, ParseRejectsBadDataOffset) {
  std::vector<std::uint8_t> seg(20, 0);
  seg[12] = 0x20;  // data offset 2 words
  EXPECT_FALSE(parse_tcp(seg).has_value());
}

TEST(Udp, BuildParseRoundTrip) {
  UdpHeader u;
  u.src_port = 1027;
  u.dst_port = 53;
  const std::vector<std::uint8_t> payload(25, 0x42);
  const auto dgram = build_udp_datagram(u, Ipv4Address(9, 9, 9, 9),
                                        Ipv4Address(8, 8, 8, 8), payload);
  ASSERT_EQ(dgram.size(), 33u);
  const auto parsed = parse_udp(dgram);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 1027);
  EXPECT_EQ(parsed->dst_port, 53);
  EXPECT_EQ(parsed->length, 33);
  EXPECT_NE(parsed->checksum, 0);  // zero is transmitted as 0xFFFF
}

TEST(Udp, ParseRejectsShortAndBadLength) {
  EXPECT_FALSE(parse_udp(std::vector<std::uint8_t>(4)).has_value());
  std::vector<std::uint8_t> bad(8, 0);
  bad[5] = 4;  // length 4 < 8
  EXPECT_FALSE(parse_udp(bad).has_value());
}

TEST(Icmp, ParseBasics) {
  std::vector<std::uint8_t> wire = {8, 0, 0x12, 0x34, 0, 1, 0, 2};
  const auto parsed = parse_icmp(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, 8);
  EXPECT_EQ(parsed->code, 0);
  EXPECT_EQ(parsed->checksum, 0x1234);
  EXPECT_EQ(parsed->rest, 0x00010002u);
  EXPECT_FALSE(parse_icmp(std::vector<std::uint8_t>(7)).has_value());
}

TEST(IpProtoName, KnownAndUnknown) {
  EXPECT_STREQ(ip_proto_name(6), "TCP");
  EXPECT_STREQ(ip_proto_name(17), "UDP");
  EXPECT_STREQ(ip_proto_name(1), "ICMP");
  EXPECT_STREQ(ip_proto_name(2), "IGMP");
  EXPECT_STREQ(ip_proto_name(8), "EGP");
  EXPECT_STREQ(ip_proto_name(99), "other");
}

}  // namespace
}  // namespace netsample::net
