#include "core/targets.h"

#include <gtest/gtest.h>

#include "core/samplers.h"

namespace netsample::core {
namespace {

trace::Trace make_trace() {
  // Packets at 0, 400, 2000, 2400, 10000 us with sizes 40, 100, 552, 40, 200.
  std::vector<trace::PacketRecord> v;
  const std::uint64_t times[] = {0, 400, 2000, 2400, 10000};
  const std::uint16_t sizes[] = {40, 100, 552, 40, 200};
  for (int i = 0; i < 5; ++i) {
    trace::PacketRecord p;
    p.timestamp = MicroTime{times[i]};
    p.size = sizes[i];
    v.push_back(p);
  }
  return trace::Trace(std::move(v));
}

TEST(TargetBins, PacketSizeEdgesMatchPaper) {
  const auto e = paper_bin_edges(Target::kPacketSize);
  EXPECT_EQ(e, (std::vector<double>{41.0, 181.0}));
  const auto h = make_target_histogram(Target::kPacketSize);
  EXPECT_EQ(h.bin_count(), 3u);
}

TEST(TargetBins, InterarrivalEdgesMatchPaper) {
  const auto e = paper_bin_edges(Target::kInterarrivalTime);
  EXPECT_EQ(e, (std::vector<double>{800.0, 1200.0, 2400.0, 3600.0}));
  const auto h = make_target_histogram(Target::kInterarrivalTime);
  EXPECT_EQ(h.bin_count(), 5u);
}

TEST(TargetBins, PaperBoundaryCases) {
  auto h = make_target_histogram(Target::kPacketSize);
  // 40 -> "<41"; 41 and 180 -> middle; 181 -> top.
  EXPECT_EQ(h.bin_index(40), 0u);
  EXPECT_EQ(h.bin_index(41), 1u);
  EXPECT_EQ(h.bin_index(180), 1u);
  EXPECT_EQ(h.bin_index(181), 2u);

  auto g = make_target_histogram(Target::kInterarrivalTime);
  EXPECT_EQ(g.bin_index(799), 0u);
  EXPECT_EQ(g.bin_index(800), 1u);
  EXPECT_EQ(g.bin_index(1199), 1u);
  EXPECT_EQ(g.bin_index(1200), 2u);
  EXPECT_EQ(g.bin_index(2399), 2u);
  EXPECT_EQ(g.bin_index(2400), 3u);
  EXPECT_EQ(g.bin_index(3599), 3u);
  EXPECT_EQ(g.bin_index(3600), 4u);
}

TEST(PopulationValues, SizesAndGaps) {
  auto t = make_trace();
  const auto sizes = population_values(t.view(), Target::kPacketSize);
  EXPECT_EQ(sizes, (std::vector<double>{40, 100, 552, 40, 200}));
  const auto gaps = population_values(t.view(), Target::kInterarrivalTime);
  EXPECT_EQ(gaps, (std::vector<double>{400, 1600, 400, 7600}));
}

TEST(SampleValues, SizesOfSelected) {
  auto t = make_trace();
  Sample s{t.view(), {0, 2, 4}};
  EXPECT_EQ(sample_values(s, Target::kPacketSize),
            (std::vector<double>{40, 552, 200}));
}

TEST(SampleValues, InterarrivalUsesPredecessorInFullStream) {
  // This is the critical semantics: the selected packet's gap to its
  // predecessor in the PARENT stream, not to the previously selected packet.
  auto t = make_trace();
  Sample s{t.view(), {2, 4}};
  // Packet 2 (t=2000) follows packet 1 (t=400): gap 1600.
  // Packet 4 (t=10000) follows packet 3 (t=2400): gap 7600.
  EXPECT_EQ(sample_values(s, Target::kInterarrivalTime),
            (std::vector<double>{1600, 7600}));
}

TEST(SampleValues, FirstOfStreamContributesNothing) {
  auto t = make_trace();
  Sample s{t.view(), {0, 3}};
  EXPECT_EQ(sample_values(s, Target::kInterarrivalTime),
            (std::vector<double>{400}));
}

TEST(Sample, PacketsAndFraction) {
  auto t = make_trace();
  Sample s{t.view(), {1, 3}};
  const auto pk = s.packets();
  ASSERT_EQ(pk.size(), 2u);
  EXPECT_EQ(pk[0].size, 100);
  EXPECT_EQ(pk[1].size, 40);
  EXPECT_DOUBLE_EQ(s.fraction(), 0.4);
  EXPECT_DOUBLE_EQ((Sample{trace::TraceView{}, {}}).fraction(), 0.0);
}

TEST(BinPopulation, CountsMatchManualBinning) {
  auto t = make_trace();
  const auto h = bin_population(t.view(), Target::kPacketSize);
  EXPECT_EQ(h.count(0), 2u);  // 40, 40
  EXPECT_EQ(h.count(1), 1u);  // 100
  EXPECT_EQ(h.count(2), 2u);  // 552, 200
}

TEST(BinSample, CountsSelectedOnly) {
  auto t = make_trace();
  Sample s{t.view(), {0, 2}};
  const auto h = bin_sample(s, Target::kPacketSize);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.count(2), 1u);
}

TEST(BinValues, CustomLayout) {
  const std::vector<double> vals = {1, 5, 10, 20};
  const stats::Histogram layout({6.0, 15.0});
  const auto h = bin_values(vals, layout);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
}

TEST(Draw, MatchesSamplerIndices) {
  auto t = make_trace();
  SystematicCountSampler s(2);
  const auto sample = draw(t.view(), s);
  EXPECT_EQ(sample.indices, (std::vector<std::size_t>{0, 2, 4}));
}

TEST(TargetNames, AreHuman) {
  EXPECT_STREQ(target_name(Target::kPacketSize), "packet size");
  EXPECT_STREQ(target_name(Target::kInterarrivalTime), "interarrival time");
}

}  // namespace
}  // namespace netsample::core
