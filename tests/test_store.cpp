// shard::TraceStore — the on-disk binned-trace format and its backends:
// write/open round-trip preserves every record and every binned table
// bit-exactly (scoring over a mapped cache equals scoring over the built
// cache), both backends agree byte for byte, and every corruption class —
// wrong magic, wrong format version, wrong endianness tag, wrong record
// ABI, truncation, a flipped header byte — is refused with kDataLoss
// instead of half-read.
#include "shard/store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/trace_cache.h"
#include "exper/runner.h"
#include "shard/grid.h"
#include "synth/presets.h"
#include "trace/summary.h"

namespace netsample::shard {
namespace {

// PID-suffixed so parallel ctest processes (one per discovered test) never
// race on the same file — the store writer stages through "<path>.tmp".
std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (name + "." + std::to_string(::getpid())))
      .string();
}

const trace::Trace& shared_trace() {
  static const trace::Trace t =
      synth::TraceModel(synth::sdsc_minutes_config(0.5, 23)).generate();
  return t;
}

struct Population {
  core::BinnedTraceCache cache;
  double mean_iat;
  double mean_size;

  explicit Population(const trace::Trace& t)
      : cache(t.view()),
        mean_iat(trace::summarize_population(t.view()).interarrival.mean),
        mean_size(trace::summarize_population(t.view()).packet_size.mean) {}
};

const Population& shared_population() {
  static const Population p(shared_trace());
  return p;
}

/// Writes shared_population() to a fresh store file and returns its path.
std::string write_shared_store(const std::string& name) {
  const std::string path = temp_path(name);
  std::filesystem::remove(path);
  const auto& p = shared_population();
  const Status st = write_trace_store(path, p.cache, p.mean_iat, p.mean_size);
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  return path;
}

/// Applies `mutate` to the store's header and re-stamps the checksum, so
/// the mutation (not the checksum) is what open() trips over.
template <typename Fn>
void rewrite_header(const std::string& path, Fn mutate) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  StoreHeader h{};
  f.read(reinterpret_cast<char*>(&h), sizeof h);
  ASSERT_TRUE(f.good());
  mutate(h);
  h.header_fnv1a = 0;
  h.header_fnv1a = fnv1a64(&h, sizeof h);
  f.seekp(0);
  f.write(reinterpret_cast<const char*>(&h), sizeof h);
}

void expect_metrics_exact(const core::DisparityMetrics& a,
                          const core::DisparityMetrics& b) {
  EXPECT_EQ(a.chi2, b.chi2);
  EXPECT_EQ(a.dof, b.dof);
  EXPECT_EQ(a.significance, b.significance);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.rcost, b.rcost);
  EXPECT_EQ(a.x2, b.x2);
  EXPECT_EQ(a.avg_norm_dev, b.avg_norm_dev);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.sample_n, b.sample_n);
  EXPECT_EQ(a.population_n, b.population_n);
}

TEST(TraceStore, RoundTripPreservesRecordsAndTables) {
  const std::string path = write_shared_store("netsample_store_rt.nstore");
  auto opened = TraceStore::open(path, store_backend("mmap"));
  ASSERT_TRUE(opened.has_value()) << opened.status().to_string();
  const TraceStore store = std::move(*opened);

  const auto& p = shared_population();
  const auto base = shared_trace().view();
  ASSERT_EQ(store.packet_count(), base.size());
  EXPECT_TRUE(store.cache().mapped());
  EXPECT_EQ(store.mean_interarrival_usec(), p.mean_iat);
  EXPECT_EQ(store.mean_packet_size(), p.mean_size);

  const auto view = store.view();
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(view[i], base[i]) << "record " << i;
  }
  const auto got = store.cache().tables();
  const auto want = p.cache.tables();
  ASSERT_EQ(got.timestamps.size(), want.timestamps.size());
  for (std::size_t i = 0; i < want.timestamps.size(); ++i) {
    ASSERT_EQ(got.timestamps[i], want.timestamps[i]) << i;
    ASSERT_EQ(got.size_bins[i], want.size_bins[i]) << i;
    ASSERT_EQ(got.gap_bins[i], want.gap_bins[i]) << i;
  }
  ASSERT_EQ(got.size_prefix.size(), want.size_prefix.size());
  for (std::size_t i = 0; i < want.size_prefix.size(); ++i) {
    ASSERT_EQ(got.size_prefix[i], want.size_prefix[i]) << i;
  }
  ASSERT_EQ(got.gap_prefix.size(), want.gap_prefix.size());
  for (std::size_t i = 0; i < want.gap_prefix.size(); ++i) {
    ASSERT_EQ(got.gap_prefix[i], want.gap_prefix[i]) << i;
  }
}

TEST(TraceStore, ScoringOverMappedCacheIsBitIdenticalToBuiltCache) {
  const std::string path = write_shared_store("netsample_store_score.nstore");
  auto opened = TraceStore::open(path, store_backend("mmap"));
  ASSERT_TRUE(opened.has_value()) << opened.status().to_string();

  const auto& p = shared_population();
  for (const auto method :
       {core::Method::kSystematicCount, core::Method::kSimpleRandom,
        core::Method::kSystematicTimer}) {
    exper::CellConfig built;
    built.method = method;
    built.target = core::Target::kInterarrivalTime;
    built.granularity = 16;
    built.interval = shared_trace().view();
    built.mean_interarrival_usec = p.mean_iat;
    built.replications = 3;
    built.base_seed = 99;
    built.cache = &p.cache;

    exper::CellConfig mapped = built;
    mapped.interval = opened->view();
    mapped.mean_interarrival_usec = opened->mean_interarrival_usec();
    mapped.cache = &opened->cache();

    const auto a = exper::run_cell(built);
    const auto b = exper::run_cell(mapped);
    ASSERT_EQ(a.replications.size(), b.replications.size());
    for (std::size_t r = 0; r < a.replications.size(); ++r) {
      expect_metrics_exact(a.replications[r], b.replications[r]);
    }
  }
}

TEST(TraceStore, ReadBackendAgreesWithMmapBackend) {
  const std::string path = write_shared_store("netsample_store_read.nstore");
  auto via_mmap = TraceStore::open(path, store_backend("mmap"));
  auto via_read = TraceStore::open(path, store_backend("read"));
  ASSERT_TRUE(via_mmap.has_value());
  ASSERT_TRUE(via_read.has_value()) << via_read.status().to_string();
  ASSERT_EQ(via_read->packet_count(), via_mmap->packet_count());
  const auto a = via_mmap->view();
  const auto b = via_read->view();
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(TraceStore, UnknownBackendThrows) {
  EXPECT_THROW((void)store_backend("carrier-pigeon"), std::invalid_argument);
}

TEST(TraceStore, MissingFileIsNotFound) {
  auto opened = TraceStore::open(temp_path("netsample_store_nope.nstore"),
                                 store_backend("mmap"));
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

TEST(TraceStore, RejectsWrongMagic) {
  const std::string path = write_shared_store("netsample_store_magic.nstore");
  rewrite_header(path, [](StoreHeader& h) { h.magic[0] = 'X'; });
  auto opened = TraceStore::open(path, store_backend("mmap"));
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
}

TEST(TraceStore, RejectsFutureFormatVersion) {
  const std::string path = write_shared_store("netsample_store_ver.nstore");
  rewrite_header(path,
                 [](StoreHeader& h) { h.format_version = kStoreFormatVersion + 1; });
  auto opened = TraceStore::open(path, store_backend("mmap"));
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(opened.status().message().find("version"), std::string::npos)
      << opened.status().to_string();
}

TEST(TraceStore, RejectsForeignEndianness) {
  const std::string path = write_shared_store("netsample_store_endian.nstore");
  rewrite_header(path, [](StoreHeader& h) { h.endian_tag = 0x04030201; });
  auto opened = TraceStore::open(path, store_backend("mmap"));
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(opened.status().message().find("endian"), std::string::npos)
      << opened.status().to_string();
}

TEST(TraceStore, RejectsRecordAbiMismatch) {
  const std::string path = write_shared_store("netsample_store_abi.nstore");
  rewrite_header(path, [](StoreHeader& h) { h.record_bytes += 8; });
  auto opened = TraceStore::open(path, store_backend("mmap"));
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
}

TEST(TraceStore, RejectsTruncatedStore) {
  const std::string path = write_shared_store("netsample_store_trunc.nstore");
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - kStorePageBytes);
  auto opened = TraceStore::open(path, store_backend("mmap"));
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
  // Both backends must refuse identically — truncation is not a
  // transport-level detail.
  auto via_read = TraceStore::open(path, store_backend("read"));
  ASSERT_FALSE(via_read.has_value());
  EXPECT_EQ(via_read.status().code(), StatusCode::kDataLoss);
}

TEST(TraceStore, RejectsFlippedHeaderByte) {
  const std::string path = write_shared_store("netsample_store_fnv.nstore");
  // Corrupt packet_count WITHOUT re-stamping the checksum: the FNV gate
  // catches it before any derived length math runs.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  StoreHeader h{};
  f.read(reinterpret_cast<char*>(&h), sizeof h);
  h.packet_count += 1;
  f.seekp(0);
  f.write(reinterpret_cast<const char*>(&h), sizeof h);
  f.close();
  auto opened = TraceStore::open(path, store_backend("mmap"));
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
}

TEST(TraceStore, WriteIsAtomicNoTmpLeftBehind) {
  const std::string path = write_shared_store("netsample_store_atomic.nstore");
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

}  // namespace
}  // namespace netsample::shard
