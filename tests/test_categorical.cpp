#include "core/categorical.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/metrics.h"
#include "core/samplers.h"

namespace netsample::core {
namespace {

trace::PacketRecord pkt(std::uint64_t usec, std::uint8_t proto,
                        std::uint16_t dport, std::uint8_t src_net = 10,
                        std::uint8_t dst_net = 11) {
  trace::PacketRecord p;
  p.timestamp = MicroTime{usec};
  p.size = 100;
  p.protocol = proto;
  p.src = net::Ipv4Address(src_net, 0, 0, 1);
  p.dst = net::Ipv4Address(dst_net, 0, 0, 2);
  p.src_port = 2000;
  p.dst_port = dport;
  return p;
}

trace::Trace mixed_trace() {
  std::vector<trace::PacketRecord> v;
  std::uint64_t t = 0;
  // 60 telnet, 30 dns, 10 icmp.
  for (int i = 0; i < 60; ++i) v.push_back(pkt(t += 100, 6, 23));
  for (int i = 0; i < 30; ++i) v.push_back(pkt(t += 100, 17, 53));
  for (int i = 0; i < 10; ++i) v.push_back(pkt(t += 100, 1, 0));
  return trace::Trace(std::move(v));
}

TEST(CategoricalTarget, CategoriesOrderedByPopulationCount) {
  auto t = mixed_trace();
  CategoricalTarget target("proto", protocol_key(), t.view());
  EXPECT_EQ(target.category_count(), 3u);
  const auto& pop = target.population_counts();
  ASSERT_EQ(pop.size(), 4u);  // 3 categories + overflow
  EXPECT_DOUBLE_EQ(pop[0], 60.0);  // TCP first (largest)
  EXPECT_DOUBLE_EQ(pop[1], 30.0);
  EXPECT_DOUBLE_EQ(pop[2], 10.0);
  EXPECT_DOUBLE_EQ(pop[3], 0.0);   // overflow
}

TEST(CategoricalTarget, EmptyPopulationThrows) {
  EXPECT_THROW(CategoricalTarget("x", protocol_key(), trace::TraceView{}),
               std::invalid_argument);
}

TEST(CategoricalTarget, SampleCountsAlignWithPopulation) {
  auto t = mixed_trace();
  CategoricalTarget target("proto", protocol_key(), t.view());
  // Sample the first 10 packets (all telnet/TCP).
  Sample s{t.view(), {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}};
  const auto counts = target.sample_counts(s);
  EXPECT_DOUBLE_EQ(counts[0], 10.0);
  EXPECT_DOUBLE_EQ(counts[1], 0.0);
  EXPECT_DOUBLE_EQ(counts[2], 0.0);
  EXPECT_DOUBLE_EQ(counts[3], 0.0);
}

TEST(CategoricalTarget, UnknownCategoryGoesToOverflow) {
  auto t = mixed_trace();
  CategoricalTarget target("proto", protocol_key(), t.view());
  // Packets from a different trace with an unseen protocol.
  std::vector<trace::PacketRecord> alien = {pkt(0, 89 /*OSPF*/, 0)};
  const auto counts = target.count_packets(alien);
  EXPECT_DOUBLE_EQ(counts.back(), 1.0);
}

TEST(CategoricalTarget, PerfectSampleScoresZeroPhi) {
  auto t = mixed_trace();
  CategoricalTarget target("proto", protocol_key(), t.view());
  // A 1-in-10 sample with exactly proportional composition: 6 TCP at
  // telnet positions, 3 UDP, 1 ICMP.
  std::vector<std::size_t> idx = {0, 10, 20, 30, 40, 50, 60, 70, 80, 90};
  Sample s{t.view(), idx};
  const auto counts = target.sample_counts(s);
  const auto m = score_counts(counts, target.population_counts(), 0.1);
  EXPECT_DOUBLE_EQ(m.phi, 0.0);
  EXPECT_DOUBLE_EQ(m.cost, 0.0);
}

TEST(CategoricalTarget, SkewedSampleScoresPositivePhi) {
  auto t = mixed_trace();
  CategoricalTarget target("proto", protocol_key(), t.view());
  Sample s{t.view(), {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}};  // all TCP
  const auto counts = target.sample_counts(s);
  const auto m = score_counts(counts, target.population_counts(), 0.1);
  EXPECT_GT(m.phi, 0.3);
}

TEST(CategoricalTarget, Coverage) {
  auto t = mixed_trace();
  CategoricalTarget target("proto", protocol_key(), t.view());
  const std::vector<double> none = {0, 0, 0, 0};
  const std::vector<double> one = {5, 0, 0, 0};
  const std::vector<double> all = {5, 2, 1, 0};
  EXPECT_DOUBLE_EQ(target.coverage(none), 0.0);
  EXPECT_NEAR(target.coverage(one), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(target.coverage(all), 1.0);
}

TEST(ServicePortKey, DistinguishesProtocolAndService) {
  const auto key = service_port_key();
  const auto telnet = key(pkt(0, 6, 23));
  const auto telnet2 = key(pkt(1, 6, 23));
  const auto dns = key(pkt(2, 17, 53));
  const auto other = key(pkt(3, 6, 7777));
  const auto icmp = key(pkt(4, 1, 0));
  EXPECT_EQ(telnet, telnet2);
  EXPECT_NE(telnet, dns);
  EXPECT_NE(telnet, other);
  EXPECT_NE(other, icmp);
}

TEST(NetworkPairKey, GroupsByClassfulNets) {
  const auto key = network_pair_key();
  // Same class-A source/dest networks, different hosts -> same key.
  EXPECT_EQ(key(pkt(0, 6, 23, 10, 11)), key(pkt(1, 17, 53, 10, 11)));
  EXPECT_NE(key(pkt(0, 6, 23, 10, 11)), key(pkt(1, 6, 23, 10, 12)));
  EXPECT_NE(key(pkt(0, 6, 23, 10, 11)), key(pkt(1, 6, 23, 11, 10)));  // direction
}

trace::Trace periodic_trace() {
  // Five network pairs cycling with period 5 -- pathological for systematic
  // sampling at any k that shares a factor with the period.
  std::vector<trace::PacketRecord> v;
  std::uint64_t ts = 0;
  for (int i = 0; i < 3000; ++i) {
    const int which = i % 5;
    v.push_back(pkt(ts += 500, which < 3 ? 6 : 17,
                    which < 3 ? std::uint16_t(23) : std::uint16_t(53),
                    static_cast<std::uint8_t>(10 + which), 99));
  }
  return trace::Trace(std::move(v));
}

TEST(CategoricalTarget, SystematicSamplingAliasesOnPeriodicData) {
  // Section 5 of the paper: systematic sampling loses badly "if there is
  // positive correlation between pairs of elements within the systematic
  // sample". With a period-5 pattern and k=10, every selected packet is the
  // same category -- coverage 1/5 and an enormous phi.
  auto t = periodic_trace();
  CategoricalTarget target("pairs", network_pair_key(), t.view());
  EXPECT_EQ(target.category_count(), 5u);

  SystematicCountSampler sampler(10);
  const auto s = draw(t.view(), sampler);
  const auto counts = target.sample_counts(s);
  EXPECT_DOUBLE_EQ(target.coverage(counts), 0.2);
  const auto m = score_counts(counts, target.population_counts(), 0.1);
  EXPECT_GT(m.phi, 0.5);
}

TEST(CategoricalTarget, StratifiedSamplingDefeatsPeriodicity) {
  // Randomizing within buckets restores full coverage and a low phi on the
  // same pathological input -- the paper's argument for stratified random
  // sampling under patterned traffic.
  auto t = periodic_trace();
  CategoricalTarget target("pairs", network_pair_key(), t.view());

  StratifiedCountSampler sampler(10, Rng(21));
  const auto s = draw(t.view(), sampler);
  const auto counts = target.sample_counts(s);
  EXPECT_DOUBLE_EQ(target.coverage(counts), 1.0);
  const auto m = score_counts(counts, target.population_counts(), 0.1);
  EXPECT_LT(m.phi, 0.1);
}

}  // namespace
}  // namespace netsample::core
