#include "stats/mannwhitney.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace netsample::stats {
namespace {

TEST(MannWhitney, IdenticalSamplesAreIndistinguishable) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const auto r = mann_whitney_u(a, a);
  EXPECT_NEAR(r.prob_a_greater, 0.5, 1e-12);
  EXPECT_GT(r.significance, 0.9);
}

TEST(MannWhitney, CompleteSeparationDetected) {
  const std::vector<double> lo = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> hi = {11, 12, 13, 14, 15, 16, 17, 18};
  const auto r = mann_whitney_u(hi, lo);
  EXPECT_DOUBLE_EQ(r.prob_a_greater, 1.0);
  EXPECT_LT(r.significance, 0.001);
  EXPECT_GT(r.z, 3.0);
}

TEST(MannWhitney, DirectionMatters) {
  const std::vector<double> lo = {1, 2, 3, 4, 5};
  const std::vector<double> hi = {6, 7, 8, 9, 10};
  const auto hi_first = mann_whitney_u(hi, lo);
  const auto lo_first = mann_whitney_u(lo, hi);
  EXPECT_GT(hi_first.prob_a_greater, 0.99);
  EXPECT_LT(lo_first.prob_a_greater, 0.01);
  EXPECT_NEAR(hi_first.significance, lo_first.significance, 1e-12);
}

TEST(MannWhitney, AllTiedValuesGiveNoEvidence) {
  const std::vector<double> a = {5, 5, 5};
  const std::vector<double> b = {5, 5, 5, 5};
  const auto r = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(r.significance, 1.0);
  EXPECT_NEAR(r.prob_a_greater, 0.5, 1e-12);
}

TEST(MannWhitney, TiesHandledWithMidRanks) {
  const std::vector<double> a = {1, 2, 2, 3};
  const std::vector<double> b = {2, 3, 3, 4};
  const auto r = mann_whitney_u(a, b);
  EXPECT_LT(r.prob_a_greater, 0.5);  // a is stochastically smaller
  EXPECT_GE(r.significance, 0.0);
  EXPECT_LE(r.significance, 1.0);
}

TEST(MannWhitney, EmptySampleThrows) {
  const std::vector<double> a = {1.0};
  EXPECT_THROW((void)mann_whitney_u(a, {}), std::invalid_argument);
  EXPECT_THROW((void)mann_whitney_u({}, a), std::invalid_argument);
}

TEST(MannWhitney, FalsePositiveRateUnderNull) {
  Rng rng(83);
  int rejections = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a, b;
    for (int i = 0; i < 12; ++i) a.push_back(rng.normal());
    for (int i = 0; i < 12; ++i) b.push_back(rng.normal());
    if (mann_whitney_u(a, b).significance < 0.05) ++rejections;
  }
  // ~5% nominal; allow generous slack for the normal approximation.
  EXPECT_LE(rejections, 40);
}

TEST(MannWhitney, PowerAgainstShiftedAlternative) {
  Rng rng(89);
  int detections = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a, b;
    for (int i = 0; i < 15; ++i) a.push_back(rng.normal(1.5, 1.0));
    for (int i = 0; i < 15; ++i) b.push_back(rng.normal(0.0, 1.0));
    if (mann_whitney_u(a, b).significance < 0.05) ++detections;
  }
  EXPECT_GT(detections, 150);  // strong shift, good power expected
}

}  // namespace
}  // namespace netsample::stats
