#include "util/status.h"

#include <gtest/gtest.h>

namespace netsample {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(StatusCode::kDataLoss, "truncated record");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "truncated record");
  EXPECT_EQ(s.to_string(), "DATA_LOSS: truncated record");
}

TEST(Status, CodeNamesAreDistinct) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(status_code_name(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(status_code_name(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(status_code_name(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(status_code_name(StatusCode::kOutOfRange), "OUT_OF_RANGE");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(static_cast<bool>(v));
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().is_ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status(StatusCode::kNotFound, "nope"));
  EXPECT_FALSE(v.has_value());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, ValueOnErrorThrows) {
  StatusOr<int> v(Status(StatusCode::kNotFound, "nope"));
  EXPECT_THROW((void)v.value(), std::runtime_error);
}

TEST(StatusOr, ConstructingFromOkStatusThrows) {
  EXPECT_THROW(StatusOr<int> v{Status::ok()}, std::logic_error);
}

TEST(StatusOr, ArrowOperatorWorks) {
  struct Point {
    int x;
  };
  StatusOr<Point> v(Point{5});
  EXPECT_EQ(v->x, 5);
}

TEST(StatusOr, MutableValueCanBeModified) {
  StatusOr<int> v(1);
  *v = 9;
  EXPECT_EQ(v.value(), 9);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace netsample
