#include "trace/trace.h"

#include <gtest/gtest.h>

#include <vector>

namespace netsample::trace {
namespace {

PacketRecord pkt(std::uint64_t usec, std::uint16_t size = 100) {
  PacketRecord p;
  p.timestamp = MicroTime{usec};
  p.size = size;
  return p;
}

std::vector<PacketRecord> ascending(std::size_t n, std::uint64_t step = 1000) {
  std::vector<PacketRecord> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(pkt(i * step));
  return v;
}

TEST(Trace, ConstructsFromOrderedPackets) {
  Trace t(ascending(10));
  EXPECT_EQ(t.size(), 10u);
  EXPECT_FALSE(t.empty());
}

TEST(Trace, RejectsOutOfOrderPackets) {
  std::vector<PacketRecord> v = {pkt(100), pkt(50)};
  EXPECT_THROW(Trace{v}, std::invalid_argument);
}

TEST(Trace, AppendMaintainsOrderInvariant) {
  Trace t;
  t.append(pkt(100));
  t.append(pkt(100));  // equal timestamps are legal (400us clock collisions)
  t.append(pkt(200));
  EXPECT_THROW(t.append(pkt(150)), std::invalid_argument);
  EXPECT_EQ(t.size(), 3u);
}

TEST(Trace, QuantizeClockFloorsTimestamps) {
  Trace t({pkt(0), pkt(399), pkt(400), pkt(799), pkt(1201)});
  const auto changed = t.quantize_clock(MicroDuration{400});
  EXPECT_EQ(changed, 3u);  // 399->0, 799->400, 1201->1200
  EXPECT_EQ(t[0].timestamp.usec, 0u);
  EXPECT_EQ(t[1].timestamp.usec, 0u);
  EXPECT_EQ(t[2].timestamp.usec, 400u);
  EXPECT_EQ(t[3].timestamp.usec, 400u);
  EXPECT_EQ(t[4].timestamp.usec, 1200u);
}

TEST(Trace, QuantizeRejectsNonPositiveTick) {
  Trace t(ascending(3));
  EXPECT_THROW(t.quantize_clock(MicroDuration{0}), std::invalid_argument);
  EXPECT_THROW(t.quantize_clock(MicroDuration{-5}), std::invalid_argument);
}

TEST(Trace, RebaseToZero) {
  Trace t({pkt(5000), pkt(6000), pkt(9000)});
  t.rebase_to_zero();
  EXPECT_EQ(t[0].timestamp.usec, 0u);
  EXPECT_EQ(t[1].timestamp.usec, 1000u);
  EXPECT_EQ(t[2].timestamp.usec, 4000u);
}

TEST(TraceView, StartEndDuration) {
  Trace t(ascending(5, 1000));
  const auto v = t.view();
  EXPECT_EQ(v.start_time().usec, 0u);
  EXPECT_EQ(v.end_time().usec, 4000u);
  EXPECT_EQ(v.duration().usec, 4000);
}

TEST(TraceView, EmptyViewThrowsOnTimes) {
  TraceView v;
  EXPECT_TRUE(v.empty());
  EXPECT_THROW((void)v.start_time(), std::out_of_range);
  EXPECT_THROW((void)v.end_time(), std::out_of_range);
}

TEST(TraceView, WindowSelectsHalfOpenRange) {
  Trace t(ascending(10, 1000));  // packets at 0,1000,...,9000
  const auto w = t.view().window(MicroTime{2000}, MicroTime{5000});
  ASSERT_EQ(w.size(), 3u);  // 2000, 3000, 4000
  EXPECT_EQ(w[0].timestamp.usec, 2000u);
  EXPECT_EQ(w[2].timestamp.usec, 4000u);
}

TEST(TraceView, WindowWithInvertedBoundsIsEmpty) {
  Trace t(ascending(10));
  EXPECT_TRUE(t.view().window(MicroTime{500}, MicroTime{100}).empty());
}

TEST(TraceView, WindowBeyondTraceIsEmpty) {
  Trace t(ascending(5, 1000));
  EXPECT_TRUE(t.view().window(MicroTime{100000}, MicroTime{200000}).empty());
}

TEST(TraceView, PrefixDuration) {
  Trace t(ascending(10, 1000));
  const auto p = t.view().prefix_duration(MicroDuration{3500});
  ASSERT_EQ(p.size(), 4u);  // 0,1000,2000,3000
  EXPECT_EQ(p[3].timestamp.usec, 3000u);
}

TEST(TraceView, PrefixDurationOfWindowIsRelative) {
  Trace t(ascending(10, 1000));
  const auto mid = t.view().window(MicroTime{4000}, MicroTime{10000});
  const auto p = mid.prefix_duration(MicroDuration{2500});
  ASSERT_EQ(p.size(), 3u);  // 4000,5000,6000
  EXPECT_EQ(p[0].timestamp.usec, 4000u);
}

TEST(TraceView, TotalBytes) {
  Trace t({pkt(0, 40), pkt(100, 552), pkt(200, 1500)});
  EXPECT_EQ(t.view().total_bytes(), 2092u);
}

TEST(TraceView, SizesVector) {
  Trace t({pkt(0, 40), pkt(100, 552)});
  const auto s = t.view().sizes();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 40.0);
  EXPECT_DOUBLE_EQ(s[1], 552.0);
}

TEST(TraceView, Interarrivals) {
  Trace t({pkt(0), pkt(400), pkt(2000)});
  const auto g = t.view().interarrivals();
  ASSERT_EQ(g.size(), 2u);
  EXPECT_DOUBLE_EQ(g[0], 400.0);
  EXPECT_DOUBLE_EQ(g[1], 1600.0);
}

TEST(TraceView, InterarrivalsOfTinyViewsAreEmpty) {
  Trace one({pkt(0)});
  EXPECT_TRUE(one.view().interarrivals().empty());
  EXPECT_TRUE(TraceView{}.interarrivals().empty());
}

// ---------------------------------------------------------------------------
// TimePolicy salvage appends (clock glitches from impaired captures)
// ---------------------------------------------------------------------------

TEST(TimePolicy, StrictThrowsLikeLegacyAppend) {
  Trace t({pkt(1000)});
  AppendStats stats;
  EXPECT_THROW((void)t.append(pkt(500), TimePolicy::kStrict, &stats),
               std::invalid_argument);
  EXPECT_TRUE(stats.clean());
  EXPECT_EQ(t.size(), 1u);
}

TEST(TimePolicy, ClampRewritesTimestampAndKeepsThePacket) {
  Trace t({pkt(1000)});
  AppendStats stats;
  EXPECT_TRUE(t.append(pkt(500, 77), TimePolicy::kClamp, &stats));
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1].timestamp.usec, 1000u);  // pulled up to the tail
  EXPECT_EQ(t[1].size, 77u);              // payload untouched
  EXPECT_EQ(stats.clamped, 1u);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_FALSE(stats.clean());
}

TEST(TimePolicy, QuarantineDropsThePacketAndCounts) {
  Trace t({pkt(1000)});
  AppendStats stats;
  EXPECT_FALSE(t.append(pkt(500), TimePolicy::kQuarantine, &stats));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.clamped, 0u);
}

TEST(TimePolicy, InOrderAppendsCostNothingUnderEveryPolicy) {
  for (const auto policy :
       {TimePolicy::kStrict, TimePolicy::kClamp, TimePolicy::kQuarantine}) {
    Trace t;
    AppendStats stats;
    EXPECT_TRUE(t.append(pkt(100), policy, &stats));
    EXPECT_TRUE(t.append(pkt(100), policy, &stats));  // ties are in order
    EXPECT_TRUE(t.append(pkt(200), policy, &stats));
    EXPECT_EQ(t.size(), 3u);
    EXPECT_TRUE(stats.clean());
  }
}

TEST(TimePolicy, StatsAccumulateAcrossAppends) {
  Trace t({pkt(1000)});
  AppendStats stats;
  (void)t.append(pkt(900), TimePolicy::kClamp, &stats);
  (void)t.append(pkt(800), TimePolicy::kClamp, &stats);
  (void)t.append(pkt(2000), TimePolicy::kClamp, &stats);
  EXPECT_EQ(stats.clamped, 2u);
  EXPECT_EQ(t.size(), 4u);
  // The clamp preserved the trace invariant end to end.
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i - 1].timestamp.usec, t[i].timestamp.usec);
  }
}

TEST(TimePolicy, NullStatsPointerIsAccepted) {
  Trace t({pkt(1000)});
  EXPECT_TRUE(t.append(pkt(500), TimePolicy::kClamp, nullptr));
  EXPECT_FALSE(t.append(pkt(400), TimePolicy::kQuarantine, nullptr));
}

}  // namespace
}  // namespace netsample::trace
