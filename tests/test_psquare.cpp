#include "stats/psquare.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/descriptive.h"
#include "util/rng.h"

namespace netsample::stats {
namespace {

TEST(P2Quantile, ValidatesQ) {
  EXPECT_THROW(P2Quantile(0.0), std::domain_error);
  EXPECT_THROW(P2Quantile(1.0), std::domain_error);
  EXPECT_THROW(P2Quantile(-0.5), std::domain_error);
  EXPECT_NO_THROW(P2Quantile(0.5));
}

TEST(P2Quantile, EmptyThrows) {
  P2Quantile p(0.5);
  EXPECT_THROW((void)p.value(), std::logic_error);
}

TEST(P2Quantile, SmallSamplesAreExact) {
  P2Quantile p(0.5);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.value(), 3.0);
  p.add(1.0);
  EXPECT_DOUBLE_EQ(p.value(), 2.0);  // median of {1,3}
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.value(), 2.0);
}

class P2AccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(P2AccuracyTest, UniformStream) {
  const double q = GetParam();
  P2Quantile p(q);
  Rng rng(41);
  std::vector<double> all;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform01();
    p.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact = quantile_sorted(all, q);
  EXPECT_NEAR(p.value(), exact, 0.01) << "q=" << q;
}

TEST_P(P2AccuracyTest, ExponentialStream) {
  const double q = GetParam();
  P2Quantile p(q);
  Rng rng(43);
  std::vector<double> all;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.exponential(2358.0);
    p.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact = quantile_sorted(all, q);
  // Relative tolerance: heavy tails make absolute bounds meaningless.
  EXPECT_NEAR(p.value(), exact, 0.05 * exact + 1.0) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2AccuracyTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.95));

TEST(P2Quantile, BimodalPacketSizes) {
  // The paper's bimodal size distribution: the median estimator must land
  // between or on the modes sensibly.
  P2Quantile median(0.5);
  Rng rng(47);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    double x;
    const double u = rng.uniform01();
    if (u < 0.32) {
      x = 40.0;
    } else if (u < 0.62) {
      x = 552.0;
    } else {
      x = rng.uniform(41.0, 551.0);
    }
    median.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact = quantile_sorted(all, 0.5);
  EXPECT_NEAR(median.value(), exact, 0.1 * exact);
}

TEST(P2Quantile, CountTracksObservations) {
  P2Quantile p(0.9);
  for (int i = 0; i < 17; ++i) p.add(i);
  EXPECT_EQ(p.count(), 17u);
}

TEST(P2Quantile, MonotoneUnderSortedInput) {
  // Feeding a sorted stream must keep the estimate within the data range.
  P2Quantile p(0.5);
  for (int i = 0; i < 10000; ++i) p.add(static_cast<double>(i));
  EXPECT_GE(p.value(), 0.0);
  EXPECT_LE(p.value(), 10000.0);
  // Median of 0..9999 is ~5000; P2 on sorted input is biased but should be
  // in the right region.
  EXPECT_NEAR(p.value(), 5000.0, 1500.0);
}

}  // namespace
}  // namespace netsample::stats
