#include "core/design.h"

#include <gtest/gtest.h>

namespace netsample::core {
namespace {

// Section 5.1 of the paper computes these exact sample sizes from the trace
// population parameters. Our implementation must reproduce them.

// Tolerances of a few samples absorb the difference between the paper's
// rounded z = 1.96 and our exact z = 1.9599640.

TEST(SampleSizePlan, PaperPacketSizeAt5Pct) {
  // mu = 232 bytes, sigma = 236, r = 5%, 95% confidence -> n = 1590.
  const auto p = plan_sample_size(232.0, 236.0, 5.0, 0.95);
  EXPECT_NEAR(static_cast<double>(p.n), 1590.0, 1.0);
}

TEST(SampleSizePlan, PaperPacketSizeAt1Pct) {
  // r = 1% -> n = 39752.
  const auto p = plan_sample_size(232.0, 236.0, 1.0, 0.95);
  EXPECT_NEAR(static_cast<double>(p.n), 39752.0, 2.0);
}

TEST(SampleSizePlan, PaperInterarrivalAt5Pct) {
  // mu = 2358 us, sigma = 2734 -> n = 2066.
  const auto p = plan_sample_size(2358.0, 2734.0, 5.0, 0.95);
  EXPECT_NEAR(static_cast<double>(p.n), 2066.0, 1.0);
}

TEST(SampleSizePlan, PaperInterarrivalAt1Pct) {
  // r = 1% -> n = 51644.
  const auto p = plan_sample_size(2358.0, 2734.0, 1.0, 0.95);
  EXPECT_NEAR(static_cast<double>(p.n), 51644.0, 3.0);
}

TEST(SampleSizePlan, SamplingFractionAgainstPaperPopulation)
{
  // 1590 out of ~1.6M is a fraction of ~0.1% (the paper's "around 0.10%").
  const auto p = plan_sample_size(232.0, 236.0, 5.0, 0.95, 1'600'000);
  EXPECT_NEAR(p.sampling_fraction, 0.001, 0.0002);
  // The finite-population correction barely moves n at this scale.
  EXPECT_LE(p.n_fpc, p.n);
  EXPECT_GT(p.n_fpc, p.n - 5);
}

TEST(SampleSizePlan, FpcMattersForSmallPopulations) {
  const auto p = plan_sample_size(100.0, 100.0, 5.0, 0.95, 2000);
  // n0 = (1.96*100/5)^2 ~ 1537; FPC shrinks it drastically for N=2000.
  EXPECT_GT(p.n, 1500u);
  EXPECT_LT(p.n_fpc, 900u);
}

TEST(SampleSizePlan, TighterAccuracyNeedsMoreSamples) {
  const auto loose = plan_sample_size(232.0, 236.0, 10.0, 0.95);
  const auto tight = plan_sample_size(232.0, 236.0, 2.0, 0.95);
  EXPECT_LT(loose.n, tight.n);
  // Quadratic scaling: 5x tighter accuracy -> 25x samples.
  EXPECT_NEAR(static_cast<double>(tight.n) / static_cast<double>(loose.n), 25.0,
              0.5);
}

TEST(SampleSizePlan, HigherConfidenceNeedsMoreSamples) {
  const auto lo = plan_sample_size(232.0, 236.0, 5.0, 0.90);
  const auto hi = plan_sample_size(232.0, 236.0, 5.0, 0.99);
  EXPECT_LT(lo.n, hi.n);
  EXPECT_NEAR(lo.z, 1.645, 0.001);
  EXPECT_NEAR(hi.z, 2.576, 0.001);
}

TEST(SampleSizePlan, Validation) {
  EXPECT_THROW((void)plan_sample_size(0.0, 1.0, 5.0, 0.95), std::invalid_argument);
  EXPECT_THROW((void)plan_sample_size(1.0, 0.0, 5.0, 0.95), std::invalid_argument);
  EXPECT_THROW((void)plan_sample_size(1.0, 1.0, 0.0, 0.95), std::invalid_argument);
  EXPECT_THROW((void)plan_sample_size(1.0, 1.0, 5.0, 1.5), std::domain_error);
}

TEST(AchievableAccuracy, InvertsThePlan) {
  const auto p = plan_sample_size(232.0, 236.0, 5.0, 0.95);
  const double r = achievable_accuracy_pct(232.0, 236.0, p.n, 0.95);
  EXPECT_NEAR(r, 5.0, 0.01);
}

TEST(AchievableAccuracy, MoreSamplesTightenAccuracy) {
  const double r1 = achievable_accuracy_pct(232.0, 236.0, 1000, 0.95);
  const double r2 = achievable_accuracy_pct(232.0, 236.0, 4000, 0.95);
  EXPECT_NEAR(r1 / r2, 2.0, 0.01);  // 4x samples -> 2x accuracy
}

TEST(AchievableAccuracy, Validation) {
  EXPECT_THROW((void)achievable_accuracy_pct(0.0, 1.0, 100, 0.95),
               std::invalid_argument);
  EXPECT_THROW((void)achievable_accuracy_pct(1.0, 1.0, 0, 0.95),
               std::invalid_argument);
}

}  // namespace
}  // namespace netsample::core
