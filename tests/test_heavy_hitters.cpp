#include "stats/heavy_hitters.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace netsample::stats {
namespace {

TEST(MisraGries, ZeroCountersThrows) {
  EXPECT_THROW(MisraGries<int>(0), std::invalid_argument);
}

TEST(MisraGries, ExactWhenUnderCapacity) {
  MisraGries<std::string> mg(10);
  mg.add("a", 5);
  mg.add("b", 3);
  mg.add("a", 2);
  EXPECT_EQ(mg.estimate("a"), 7u);
  EXPECT_EQ(mg.estimate("b"), 3u);
  EXPECT_EQ(mg.estimate("c"), 0u);
  EXPECT_EQ(mg.total(), 10u);
  EXPECT_EQ(mg.size(), 2u);
}

TEST(MisraGries, UndercountBoundHolds) {
  // Stream: one heavy key (40%) plus 1000 distinct light keys.
  MisraGries<int> mg(9);  // error bound = n/10
  Rng rng(3);
  const int n = 50000;
  int heavy_true = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.4)) {
      mg.add(-1);
      ++heavy_true;
    } else {
      mg.add(static_cast<int>(rng.uniform_below(1000)));
    }
  }
  const auto est = mg.estimate(-1);
  EXPECT_LE(est, static_cast<std::uint64_t>(heavy_true));
  EXPECT_GE(est + mg.error_bound(), static_cast<std::uint64_t>(heavy_true));
  // A 40% key against a 10-counter summary must survive.
  const auto top = mg.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, -1);
}

TEST(MisraGries, GuaranteedKeysAreKept) {
  // Any key with frequency > n/(m+1) must be tracked. m=4, so >20%.
  MisraGries<char> mg(4);
  // 'x' appears 30 of 100 times, spread through an adversarial stream of
  // distinct other keys.
  int others = 0;
  for (int i = 0; i < 100; ++i) {
    if (i % 10 < 3) {
      mg.add('x');
    } else {
      mg.add(static_cast<char>(-(++others % 100) - 1));
    }
  }
  EXPECT_GT(mg.estimate('x'), 0u);
}

TEST(MisraGries, SizeNeverExceedsCapacity) {
  MisraGries<int> mg(7);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    mg.add(static_cast<int>(rng.uniform_below(5000)));
    ASSERT_LE(mg.size(), 7u);
  }
}

TEST(MisraGries, WeightedAdds) {
  MisraGries<int> mg(2);
  mg.add(1, 100);
  mg.add(2, 50);
  mg.add(3, 30);  // forces a decrement of min(30, 50, 100)... batched
  EXPECT_LE(mg.size(), 2u);
  EXPECT_GE(mg.estimate(1), 70u);  // heavy key survives with most mass
  EXPECT_EQ(mg.total(), 180u);
}

TEST(MisraGries, TopOrdering) {
  MisraGries<int> mg(5);
  mg.add(1, 10);
  mg.add(2, 30);
  mg.add(3, 20);
  const auto top = mg.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2);
  EXPECT_EQ(top[1].first, 3);
}

TEST(MisraGries, MergePreservesTotalsAndHeavyKeys) {
  MisraGries<int> a(8), b(8);
  Rng rng(7);
  int heavy = 0;
  for (int i = 0; i < 5000; ++i) {
    auto& target = (i % 2 == 0) ? a : b;
    if (rng.bernoulli(0.5)) {
      target.add(42);
      ++heavy;
    } else {
      target.add(static_cast<int>(rng.uniform_below(300)));
    }
  }
  const auto total_before = a.total() + b.total();
  a.merge(b);
  EXPECT_EQ(a.total(), total_before);
  EXPECT_EQ(a.top(1)[0].first, 42);
  EXPECT_LE(a.estimate(42), static_cast<std::uint64_t>(heavy));
}

TEST(MisraGries, NetMatrixUseCase) {
  // The Section 8 scenario: network-pair keys, Zipf-ish popularity, small
  // summary. The top pair must be identified and estimated within bound.
  MisraGries<std::uint64_t> mg(32);
  Rng rng(11);
  std::uint64_t top_true = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    std::uint64_t pair;
    if (u < 0.15) {
      pair = 0;  // the heavy pair
      ++top_true;
    } else {
      pair = 1 + rng.uniform_below(5000);
    }
    mg.add(pair);
  }
  const auto top = mg.top(1);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first, 0u);
  EXPECT_NEAR(static_cast<double>(mg.estimate(0)),
              static_cast<double>(top_true),
              static_cast<double>(mg.error_bound()));
}

}  // namespace
}  // namespace netsample::stats
