#include "trace/series.h"

#include <gtest/gtest.h>

namespace netsample::trace {
namespace {

PacketRecord pkt(std::uint64_t usec, std::uint16_t size) {
  PacketRecord p;
  p.timestamp = MicroTime{usec};
  p.size = size;
  return p;
}

TEST(PerSecondSeries, BucketsBySecond) {
  Trace t({pkt(0, 100), pkt(500000, 200), pkt(1000000, 300), pkt(2500000, 400)});
  PerSecondSeries s(t.view());
  ASSERT_EQ(s.seconds(), 3u);
  EXPECT_EQ(s.bucket(0).packets, 2u);
  EXPECT_EQ(s.bucket(0).bytes, 300u);
  EXPECT_EQ(s.bucket(1).packets, 1u);
  EXPECT_EQ(s.bucket(2).packets, 1u);
}

TEST(PerSecondSeries, EmptySecondsAreKept) {
  Trace t({pkt(0, 100), pkt(3200000, 100)});
  PerSecondSeries s(t.view());
  ASSERT_EQ(s.seconds(), 4u);
  EXPECT_EQ(s.bucket(1).packets, 0u);
  EXPECT_EQ(s.bucket(2).packets, 0u);
}

TEST(PerSecondSeries, RatesVectors) {
  Trace t({pkt(0, 1000), pkt(100, 1000), pkt(1000000, 500)});
  PerSecondSeries s(t.view());
  const auto pps = s.packet_rates();
  const auto bps = s.byte_rates();
  const auto kbps = s.kilobyte_rates();
  ASSERT_EQ(pps.size(), 2u);
  EXPECT_DOUBLE_EQ(pps[0], 2.0);
  EXPECT_DOUBLE_EQ(bps[0], 2000.0);
  EXPECT_DOUBLE_EQ(kbps[0], 2.0);
  EXPECT_DOUBLE_EQ(bps[1], 500.0);
}

TEST(PerSecondSeries, MeanSizesSkipEmptySeconds) {
  Trace t({pkt(0, 100), pkt(2000000, 300)});
  PerSecondSeries s(t.view());
  const auto ms = s.mean_sizes();
  ASSERT_EQ(ms.size(), 2u);  // second 1 (empty) skipped
  EXPECT_DOUBLE_EQ(ms[0], 100.0);
  EXPECT_DOUBLE_EQ(ms[1], 300.0);
}

TEST(PerSecondSeries, RelativeToViewStart) {
  // A window starting mid-trace buckets relative to its own first packet.
  Trace t({pkt(5'500'000, 10), pkt(5'900'000, 20), pkt(6'600'000, 30)});
  PerSecondSeries s(t.view());
  ASSERT_EQ(s.seconds(), 2u);
  EXPECT_EQ(s.bucket(0).packets, 2u);  // 5.5s and 5.9s fall in [5.5, 6.5)
  EXPECT_EQ(s.bucket(1).packets, 1u);
}

TEST(PerSecondSeries, EmptyViewYieldsNoSeconds) {
  PerSecondSeries s{TraceView{}};
  EXPECT_EQ(s.seconds(), 0u);
  EXPECT_TRUE(s.packet_rates().empty());
}

TEST(SecondBucket, MeanPacketSize) {
  SecondBucket b;
  EXPECT_DOUBLE_EQ(b.mean_packet_size(), 0.0);
  b.packets = 4;
  b.bytes = 1000;
  EXPECT_DOUBLE_EQ(b.mean_packet_size(), 250.0);
}

}  // namespace
}  // namespace netsample::trace
