#include "trace/summary.h"

#include <gtest/gtest.h>

namespace netsample::trace {
namespace {

PacketRecord pkt(std::uint64_t usec, std::uint16_t size) {
  PacketRecord p;
  p.timestamp = MicroTime{usec};
  p.size = size;
  return p;
}

TEST(SummarizePopulation, BasicStatistics) {
  // Sizes 40, 40, 552, 552 at gaps of 400us.
  Trace t({pkt(0, 40), pkt(400, 40), pkt(800, 552), pkt(1200, 552)});
  const auto s = summarize_population(t.view());
  EXPECT_EQ(s.total_packets, 4u);
  EXPECT_DOUBLE_EQ(s.packet_size.min, 40.0);
  EXPECT_DOUBLE_EQ(s.packet_size.max, 552.0);
  EXPECT_DOUBLE_EQ(s.packet_size.mean, 296.0);
  EXPECT_DOUBLE_EQ(s.interarrival.mean, 400.0);
  EXPECT_DOUBLE_EQ(s.interarrival.stddev, 0.0);
}

TEST(SummarizePopulation, EmptyViewIsZeroed) {
  const auto s = summarize_population(TraceView{});
  EXPECT_EQ(s.total_packets, 0u);
  EXPECT_EQ(s.packet_size.n, 0u);
}

TEST(SummarizePerSecond, RatesAndSizes) {
  // Two seconds: 3 packets of 100B, then 1 packet of 500B.
  Trace t({pkt(0, 100), pkt(1000, 100), pkt(2000, 100), pkt(1'000'000, 500)});
  const auto s = summarize_per_second(t.view());
  EXPECT_EQ(s.total_packets, 4u);
  EXPECT_DOUBLE_EQ(s.packet_rate.mean, 2.0);   // (3 + 1) / 2
  EXPECT_DOUBLE_EQ(s.packet_rate.min, 1.0);
  EXPECT_DOUBLE_EQ(s.packet_rate.max, 3.0);
  EXPECT_DOUBLE_EQ(s.kilobyte_rate.mean, 0.4);  // (0.3 + 0.5) / 2
  EXPECT_DOUBLE_EQ(s.mean_packet_size.mean, 300.0);  // (100 + 500) / 2
}

TEST(SummarizePerSecond, SingleSecond) {
  Trace t({pkt(0, 40), pkt(5000, 40)});
  const auto s = summarize_per_second(t.view());
  EXPECT_DOUBLE_EQ(s.packet_rate.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.packet_rate.stddev, 0.0);
}

}  // namespace
}  // namespace netsample::trace
