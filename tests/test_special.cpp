#include "stats/special.h"

#include <gtest/gtest.h>

#include <cmath>

namespace netsample::stats {
namespace {

// Reference values from standard statistical tables.

TEST(RegularizedGamma, KnownValues) {
  // P(1, x) = 1 - e^{-x}
  EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(regularized_gamma_p(1.0, 2.5), 1.0 - std::exp(-2.5), 1e-12);
  // P(0.5, x) = erf(sqrt(x))
  EXPECT_NEAR(regularized_gamma_p(0.5, 1.0), std::erf(1.0), 1e-10);
  EXPECT_NEAR(regularized_gamma_p(0.5, 4.0), std::erf(2.0), 1e-10);
}

TEST(RegularizedGamma, ComplementarityPQ) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0, 100.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(3.0, 0.0), 1.0);
  EXPECT_NEAR(regularized_gamma_p(2.0, 1000.0), 1.0, 1e-12);
}

TEST(RegularizedGamma, DomainErrors) {
  EXPECT_THROW((void)regularized_gamma_p(0.0, 1.0), std::domain_error);
  EXPECT_THROW((void)regularized_gamma_p(-1.0, 1.0), std::domain_error);
  EXPECT_THROW((void)regularized_gamma_p(1.0, -0.1), std::domain_error);
  EXPECT_THROW((void)regularized_gamma_q(0.0, 1.0), std::domain_error);
}

TEST(ChiSquared, CriticalValuesAtAlpha05) {
  // Upper 5% critical values: chi2_{0.05, dof}.
  EXPECT_NEAR(chi_squared_sf(3.841, 1), 0.05, 2e-4);
  EXPECT_NEAR(chi_squared_sf(5.991, 2), 0.05, 2e-4);
  EXPECT_NEAR(chi_squared_sf(9.488, 4), 0.05, 2e-4);
  EXPECT_NEAR(chi_squared_sf(18.307, 10), 0.05, 2e-4);
}

TEST(ChiSquared, CdfSfComplement) {
  for (double k : {1.0, 2.0, 4.0, 10.0}) {
    for (double x : {0.5, 2.0, 8.0, 30.0}) {
      EXPECT_NEAR(chi_squared_cdf(x, k) + chi_squared_sf(x, k), 1.0, 1e-12);
    }
  }
}

TEST(ChiSquared, EdgeCases) {
  EXPECT_DOUBLE_EQ(chi_squared_cdf(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(chi_squared_cdf(-1.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(chi_squared_sf(0.0, 3), 1.0);
}

TEST(ChiSquared, MedianOfDof2IsLn4) {
  // chi2 with 2 dof is Exp(2): median = 2 ln 2.
  EXPECT_NEAR(chi_squared_cdf(2.0 * std::log(2.0), 2), 0.5, 1e-12);
}

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145707, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.995), 2.5758293035489004, 1e-9);
}

TEST(NormalQuantile, DomainErrors) {
  EXPECT_THROW((void)normal_quantile(0.0), std::domain_error);
  EXPECT_THROW((void)normal_quantile(1.0), std::domain_error);
  EXPECT_THROW((void)normal_quantile(-0.1), std::domain_error);
}

TEST(ZForConfidence, PaperValue) {
  // The paper's Section 5.1 uses z = 1.96 for 95% confidence.
  EXPECT_NEAR(z_for_confidence(0.95), 1.96, 0.001);
  EXPECT_NEAR(z_for_confidence(0.99), 2.576, 0.001);
  EXPECT_NEAR(z_for_confidence(0.90), 1.645, 0.001);
}

TEST(ZForConfidence, DomainErrors) {
  EXPECT_THROW((void)z_for_confidence(0.0), std::domain_error);
  EXPECT_THROW((void)z_for_confidence(1.0), std::domain_error);
}

TEST(KolmogorovSf, KnownValues) {
  // Q_KS(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(kolmogorov_sf(1.36), 0.049, 0.002);
  EXPECT_NEAR(kolmogorov_sf(1.63), 0.010, 0.002);
  EXPECT_DOUBLE_EQ(kolmogorov_sf(0.0), 1.0);
  EXPECT_DOUBLE_EQ(kolmogorov_sf(-1.0), 1.0);
  EXPECT_NEAR(kolmogorov_sf(10.0), 0.0, 1e-12);
}

TEST(KolmogorovSf, MonotoneDecreasing) {
  double prev = 1.0;
  for (double l = 0.1; l < 3.0; l += 0.1) {
    const double q = kolmogorov_sf(l);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

}  // namespace
}  // namespace netsample::stats
