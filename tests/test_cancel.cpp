// util::CancelToken: cooperative cancellation and watchdog deadlines, plus
// their end-to-end effect on run_cell. Timeout tests arm already-expired
// deadlines, so nothing here sleeps or depends on scheduler timing.
#include "util/cancel.h"

#include <gtest/gtest.h>

#include "exper/experiment.h"
#include "exper/runner.h"
#include "util/status.h"

namespace netsample {
namespace {

TEST(CancelToken, FreshTokenIsClear) {
  util::CancelToken token;
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.deadline_exceeded());
  EXPECT_TRUE(token.check().is_ok());
  EXPECT_NO_THROW(token.throw_if_stopped());
}

TEST(CancelToken, CancelIsStickyAndIdempotent) {
  util::CancelToken token;
  token.cancel();
  token.cancel();
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_EQ(token.check().code(), StatusCode::kCancelled);
}

TEST(CancelToken, ExpiredDeadlineFailsFirstCheck) {
  util::CancelToken token;
  token.set_deadline_after(1e-12);  // expires before the next clock read
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.deadline_exceeded());
  EXPECT_EQ(token.check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelToken, NonPositiveDeadlineDisarms) {
  util::CancelToken token;
  token.set_deadline_after(1e-12);
  token.set_deadline_after(0);
  EXPECT_FALSE(token.has_deadline());
  EXPECT_TRUE(token.check().is_ok());
  token.set_deadline_after(-5);
  EXPECT_FALSE(token.has_deadline());
}

TEST(CancelToken, FarDeadlineIsNotExceeded) {
  util::CancelToken token;
  token.set_deadline_after(3600.0);
  EXPECT_FALSE(token.deadline_exceeded());
  EXPECT_TRUE(token.check().is_ok());
}

TEST(CancelToken, CancellationWinsOverDeadlineInCheck) {
  util::CancelToken token;
  token.set_deadline_after(1e-12);
  token.cancel();
  EXPECT_EQ(token.check().code(), StatusCode::kCancelled);
}

TEST(CancelToken, ParentCancellationPropagates) {
  util::CancelToken sweep;
  util::CancelToken cell;
  cell.link_parent(&sweep);
  EXPECT_TRUE(cell.check().is_ok());
  sweep.cancel();
  EXPECT_TRUE(cell.cancel_requested());
  EXPECT_EQ(cell.check().code(), StatusCode::kCancelled);
}

TEST(CancelToken, ParentDeadlinePropagates) {
  util::CancelToken sweep;
  util::CancelToken cell;
  cell.link_parent(&sweep);
  sweep.set_deadline_after(1e-12);
  EXPECT_TRUE(cell.deadline_exceeded());
  EXPECT_EQ(cell.check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelToken, ChildCancellationDoesNotReachParent) {
  util::CancelToken sweep;
  util::CancelToken cell;
  cell.link_parent(&sweep);
  cell.cancel();
  EXPECT_FALSE(sweep.cancel_requested());
}

TEST(CancelToken, ThrowIfStoppedCarriesTheStatus) {
  util::CancelToken token;
  token.cancel();
  try {
    token.throw_if_stopped();
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
  }
}

TEST(CancelToken, FreeHelperIgnoresNull) {
  EXPECT_NO_THROW(util::throw_if_stopped(nullptr));
  util::CancelToken token;
  token.cancel();
  EXPECT_THROW(util::throw_if_stopped(&token), StatusError);
}

// ---------------------------------------------------------------------------
// End to end: a cancelled / expired token unwinds run_cell.
// ---------------------------------------------------------------------------

class CancelRunCellTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ex_ = new exper::Experiment(23, 2.0); }
  static void TearDownTestSuite() {
    delete ex_;
    ex_ = nullptr;
  }

  static exper::CellConfig cell() {
    exper::CellConfig cfg;
    cfg.method = core::Method::kSystematicCount;
    cfg.target = core::Target::kPacketSize;
    cfg.granularity = 16;
    cfg.interval = ex_->full();
    cfg.mean_interarrival_usec = ex_->mean_interarrival_usec();
    cfg.replications = 3;
    cfg.base_seed = 7;
    return cfg;
  }

  static exper::Experiment* ex_;
};

exper::Experiment* CancelRunCellTest::ex_ = nullptr;

TEST_F(CancelRunCellTest, CancelledTokenUnwindsRunCell) {
  exper::CellConfig cfg = cell();
  util::CancelToken token;
  token.cancel();
  cfg.cancel = &token;
  try {
    (void)exper::run_cell(cfg);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
  }
}

TEST_F(CancelRunCellTest, ExpiredDeadlineUnwindsRunCell) {
  exper::CellConfig cfg = cell();
  util::CancelToken token;
  token.set_deadline_after(1e-12);
  cfg.cancel = &token;
  try {
    (void)exper::run_cell(cfg);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(CancelRunCellTest, NullTokenChangesNothing) {
  exper::CellConfig with_null = cell();
  with_null.cancel = nullptr;
  exper::CellConfig plain = cell();
  const auto a = exper::run_cell(with_null);
  const auto b = exper::run_cell(plain);
  ASSERT_EQ(a.replications.size(), b.replications.size());
  for (std::size_t r = 0; r < a.replications.size(); ++r) {
    EXPECT_EQ(a.replications[r].phi, b.replications[r].phi);
  }
}

}  // namespace
}  // namespace netsample
