// The sharded-sweep runtime (shard::): line-protocol round-trips, the
// SweepSpec wire codec, journal-key parity between the grid helpers and the
// threaded ParallelRunner, and the coordinator/worker determinism contract —
// a W-worker multi-process sweep (fork-only workers over a shared mmap'd
// TraceStore) is bit-identical to the threaded --jobs sweep at any W,
// including when a worker dies mid-sweep and its leases are reassigned.
#include "shard/coordinator.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exper/journal.h"
#include "exper/parallel.h"
#include "shard/grid.h"
#include "shard/protocol.h"
#include "shard/store.h"
#include "shard/worker.h"
#include "synth/presets.h"
#include "trace/summary.h"

namespace netsample::shard {
namespace {

// PID-suffixed so parallel ctest processes (one per discovered test) never
// race on the same file — the store writer stages through "<path>.tmp".
std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (name + "." + std::to_string(::getpid())))
      .string();
}

const trace::Trace& shared_trace() {
  static const trace::Trace t =
      synth::TraceModel(synth::sdsc_minutes_config(0.5, 23)).generate();
  return t;
}

struct Fixture {
  core::BinnedTraceCache cache;
  double mean_iat;
  std::string store_path;

  Fixture()
      : cache(shared_trace().view()),
        mean_iat(trace::summarize_population(shared_trace().view())
                     .interarrival.mean),
        store_path(temp_path("netsample_shard_fixture.nstore")) {
    std::filesystem::remove(store_path);
    const double mean_size =
        trace::summarize_population(shared_trace().view()).packet_size.mean;
    const Status st =
        write_trace_store(store_path, cache, mean_iat, mean_size);
    EXPECT_TRUE(st.is_ok()) << st.to_string();
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

/// A small 4-cell spec the coordinator tests share.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.targets = {core::Target::kPacketSize};
  spec.methods = {core::Method::kSystematicCount, core::Method::kSimpleRandom};
  spec.granularities = {8, 64};
  spec.replications = 2;
  spec.base_seed = 7;
  return spec;
}

void expect_metrics_exact(const core::DisparityMetrics& a,
                          const core::DisparityMetrics& b) {
  EXPECT_EQ(a.chi2, b.chi2);
  EXPECT_EQ(a.dof, b.dof);
  EXPECT_EQ(a.significance, b.significance);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.rcost, b.rcost);
  EXPECT_EQ(a.x2, b.x2);
  EXPECT_EQ(a.avg_norm_dev, b.avg_norm_dev);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.sample_n, b.sample_n);
  EXPECT_EQ(a.population_n, b.population_n);
}

/// The threaded reference: the exact replications ParallelRunner computes
/// for `spec` over the in-memory (non-mapped) population.
exper::RunReport threaded_reference(const SweepSpec& spec, int jobs) {
  const auto& f = fixture();
  const auto grid =
      build_grid(spec, shared_trace().view(), f.mean_iat, &f.cache);
  exper::ParallelRunner runner(jobs);
  exper::RunOptions opts;
  opts.on_error = exper::FailPolicy::kSkip;
  return runner.run(grid, spec.base_seed, opts);
}

void expect_matches_reference(const ShardReport& got,
                              const exper::RunReport& want) {
  ASSERT_EQ(got.cells.size(), want.cells.size());
  for (std::size_t i = 0; i < want.cells.size(); ++i) {
    ASSERT_TRUE(got.cells[i].status.is_ok())
        << "cell " << i << ": " << got.cells[i].status.to_string();
    const auto& reps = want.cells[i].result.replications;
    ASSERT_EQ(got.cells[i].replications.size(), reps.size()) << "cell " << i;
    for (std::size_t r = 0; r < reps.size(); ++r) {
      expect_metrics_exact(got.cells[i].replications[r], reps[r]);
    }
  }
}

// ---------------------------------------------------------------------------
// Protocol.

TEST(ShardProtocol, RoundTripsEveryMessageType) {
  std::vector<Message> cases;
  Message m;
  m.type = MessageType::kSpec;
  m.text = encode_sweep_spec(small_spec());
  cases.push_back(m);
  m = Message{};
  m.type = MessageType::kLease;
  m.index = 42;
  cases.push_back(m);
  m = Message{};
  m.type = MessageType::kStop;
  cases.push_back(m);
  m = Message{};
  m.type = MessageType::kHello;
  m.pid = 1234;
  m.packets = 99;
  m.cache_builds = 0;
  m.cache_maps = 1;
  cases.push_back(m);
  m = Message{};
  m.type = MessageType::kResult;
  m.index = 3;
  m.text = "[{0x1p+0,...}]";
  cases.push_back(m);
  m = Message{};
  m.type = MessageType::kFail;
  m.index = 5;
  m.code = StatusCode::kDeadlineExceeded;
  m.text = "watchdog";
  cases.push_back(m);
  m = Message{};
  m.type = MessageType::kBye;
  m.cells = 17;
  cases.push_back(m);
  m = Message{};
  m.type = MessageType::kPing;
  m.index = 8;  // heartbeat sequence number rides the index field
  cases.push_back(m);
  m = Message{};
  m.type = MessageType::kPong;
  m.index = 8;
  cases.push_back(m);

  for (const auto& original : cases) {
    Message parsed;
    ASSERT_TRUE(parse_message(format_message(original), &parsed))
        << format_message(original);
    EXPECT_EQ(parsed.type, original.type);
    EXPECT_EQ(parsed.index, original.index);
    EXPECT_EQ(parsed.code, original.code);
    EXPECT_EQ(parsed.pid, original.pid);
    EXPECT_EQ(parsed.packets, original.packets);
    EXPECT_EQ(parsed.cache_builds, original.cache_builds);
    EXPECT_EQ(parsed.cache_maps, original.cache_maps);
    EXPECT_EQ(parsed.cells, original.cells);
    EXPECT_EQ(parsed.text, original.text);
  }
}

TEST(ShardProtocol, RejectsMalformedLines) {
  Message m;
  EXPECT_FALSE(parse_message("", &m));
  EXPECT_FALSE(parse_message("LEASE ", &m));
  EXPECT_FALSE(parse_message("LEASE 5x", &m));
  EXPECT_FALSE(parse_message("LEASE 5 6", &m));
  EXPECT_FALSE(parse_message("RESULT 3", &m));
  EXPECT_FALSE(parse_message("RESULT 3 ", &m));
  EXPECT_FALSE(parse_message("FAIL 1 99 too big a code", &m));
  EXPECT_FALSE(parse_message("HELLO pid=1", &m));
  EXPECT_FALSE(parse_message("SPEC ", &m));
  EXPECT_FALSE(parse_message("NONSENSE 1", &m));
  EXPECT_FALSE(parse_message("PING", &m));
  EXPECT_FALSE(parse_message("PING ", &m));
  EXPECT_FALSE(parse_message("PING x", &m));
  EXPECT_FALSE(parse_message("PING 1 2", &m));
  EXPECT_FALSE(parse_message("PONG 1 2", &m));
  // FAIL with an empty message is legal (some exceptions carry none).
  EXPECT_TRUE(parse_message("FAIL 1 4 ", &m));
  EXPECT_EQ(m.type, MessageType::kFail);
  EXPECT_TRUE(m.text.empty());
}

// ---------------------------------------------------------------------------
// Spec codec.

TEST(ShardGrid, SweepSpecCodecRoundTrips) {
  const SweepSpec original = default_sweep_spec();
  SweepSpec decoded;
  ASSERT_TRUE(decode_sweep_spec(encode_sweep_spec(original), &decoded));
  EXPECT_EQ(decoded.targets, original.targets);
  EXPECT_EQ(decoded.methods, original.methods);
  EXPECT_EQ(decoded.granularities, original.granularities);
  EXPECT_EQ(decoded.replications, original.replications);
  EXPECT_EQ(decoded.base_seed, original.base_seed);
  EXPECT_EQ(encode_sweep_spec(decoded), encode_sweep_spec(original));
}

TEST(ShardGrid, SweepSpecDecoderIsStrict) {
  SweepSpec spec;
  const std::string good = encode_sweep_spec(small_spec());
  ASSERT_TRUE(decode_sweep_spec(good, &spec));
  EXPECT_FALSE(decode_sweep_spec("", &spec));
  EXPECT_FALSE(decode_sweep_spec("v=2;" + good.substr(4), &spec));
  EXPECT_FALSE(decode_sweep_spec(good + ";bogus=1", &spec));
  EXPECT_FALSE(decode_sweep_spec(
      "v=1;seed=7;reps=0;targets=size;methods=random;k=8", &spec));
  EXPECT_FALSE(decode_sweep_spec(
      "v=1;seed=7;reps=2;targets=size;methods=random;k=", &spec));
  EXPECT_FALSE(decode_sweep_spec(
      "v=1;seed=7;reps=2;targets=size;methods=pigeon;k=8", &spec));
  EXPECT_FALSE(
      decode_sweep_spec("v=1;seed=7;reps=2;targets=size;k=8", &spec));
}

TEST(ShardGrid, FlowSweepSpecCodecRoundTrips) {
  SweepSpec original;
  original.workload = Workload::kFlow;
  original.targets = {core::Target::kPacketSize};
  original.methods = {core::Method::kSystematicCount,
                      core::Method::kSimpleRandom};
  original.granularities = {10, 100, 1000};
  original.replications = 3;
  original.base_seed = 99;
  original.estimators = {flow::Estimator::kTailRescale, flow::Estimator::kEm};
  original.flow.idle_timeout_usec = 15'000'000;
  original.flow.capacity = 4096;
  original.flow.em_iters = 120;

  const std::string wire = encode_sweep_spec(original);
  SweepSpec decoded;
  ASSERT_TRUE(decode_sweep_spec(wire, &decoded)) << wire;
  EXPECT_EQ(decoded.workload, Workload::kFlow);
  EXPECT_EQ(decoded.methods, original.methods);
  EXPECT_EQ(decoded.granularities, original.granularities);
  EXPECT_EQ(decoded.replications, original.replications);
  EXPECT_EQ(decoded.base_seed, original.base_seed);
  EXPECT_EQ(decoded.estimators, original.estimators);
  EXPECT_EQ(decoded.flow, original.flow);
  EXPECT_EQ(decoded.cell_count(), original.cell_count());
  EXPECT_EQ(encode_sweep_spec(decoded), wire);

  // A packet spec must not grow flow fields on the wire — old workers keep
  // decoding new coordinators' packet sweeps.
  const std::string packet_wire = encode_sweep_spec(small_spec());
  EXPECT_EQ(packet_wire.find("workload="), std::string::npos);
  EXPECT_EQ(packet_wire.find("est="), std::string::npos);

  // grid_estimator maps task index -> estimator (outermost axis).
  const std::size_t inner =
      original.methods.size() * original.granularities.size();
  EXPECT_EQ(grid_estimator(original, 0), flow::Estimator::kTailRescale);
  EXPECT_EQ(grid_estimator(original, inner - 1),
            flow::Estimator::kTailRescale);
  EXPECT_EQ(grid_estimator(original, inner), flow::Estimator::kEm);
  EXPECT_THROW((void)grid_estimator(original, 2 * inner),
               std::invalid_argument);
  EXPECT_THROW((void)grid_estimator(small_spec(), 0), std::invalid_argument);
}

TEST(ShardGrid, FlowSweepSpecDecoderIsStrict) {
  SweepSpec spec;
  const std::string base =
      "v=1;seed=7;reps=2;targets=size;methods=random;k=8";
  // est without workload=flow: rejected.
  EXPECT_FALSE(decode_sweep_spec(base + ";est=em", &spec));
  EXPECT_FALSE(decode_sweep_spec(base + ";ftimeout=1000", &spec));
  // flow workload without estimators: rejected.
  EXPECT_FALSE(decode_sweep_spec(base + ";workload=flow", &spec));
  EXPECT_FALSE(decode_sweep_spec(base + ";workload=flow;est=", &spec));
  // Unknown estimator token / workload name: rejected.
  EXPECT_FALSE(
      decode_sweep_spec(base + ";workload=flow;est=magic", &spec));
  EXPECT_FALSE(decode_sweep_spec(base + ";workload=stream;est=em", &spec));
  // Out-of-range parameters: rejected.
  EXPECT_FALSE(decode_sweep_spec(
      base + ";workload=flow;est=em;ftimeout=0", &spec));
  EXPECT_FALSE(decode_sweep_spec(
      base + ";workload=flow;est=em;emiters=0", &spec));
  // The full well-formed flow line is accepted.
  EXPECT_TRUE(decode_sweep_spec(
      base + ";workload=flow;est=rescale,em;ftimeout=30000000;fcap=0;"
             "emiters=60",
      &spec));
  EXPECT_EQ(spec.estimators.size(), 2u);
}

TEST(ShardGrid, JournalKeysMatchWhatParallelRunnerWrites) {
  const auto& f = fixture();
  const SweepSpec spec = small_spec();
  const auto grid =
      build_grid(spec, shared_trace().view(), f.mean_iat, &f.cache);

  const std::string path = temp_path("netsample_shard_keys.jsonl");
  std::filesystem::remove(path);
  auto journal = exper::CheckpointJournal::open(path);
  ASSERT_TRUE(journal.has_value());
  exper::ParallelRunner runner(1);
  exper::RunOptions opts;
  opts.journal = &*journal;
  const auto report = runner.run(grid, spec.base_seed, opts);
  ASSERT_TRUE(report.all_ok());

  // Every grid key resolves in the journal the runner just wrote, and the
  // journaled replications are the cell's replications — key parity is what
  // lets the coordinator and the threaded path share one commit log.
  ASSERT_EQ(journal->size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto* reps = journal->find(grid_journal_key(grid[i], spec.base_seed));
    ASSERT_NE(reps, nullptr) << "cell " << i;
    ASSERT_EQ(reps->size(), report.cells[i].result.replications.size());
    for (std::size_t r = 0; r < reps->size(); ++r) {
      expect_metrics_exact((*reps)[r], report.cells[i].result.replications[r]);
    }
  }
}

// ---------------------------------------------------------------------------
// Worker over in-memory FILE*s (no fork): handshake, lease, stop.

TEST(ShardWorker, SpeaksTheProtocolOverPipes) {
  const auto& f = fixture();
  const SweepSpec spec = small_spec();

  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  Message spec_msg;
  spec_msg.type = MessageType::kSpec;
  spec_msg.text = encode_sweep_spec(spec);
  const std::string script = format_message(spec_msg) + "\nLEASE 0\nSTOP\n";
  std::fwrite(script.data(), 1, script.size(), in);
  std::rewind(in);

  WorkerOptions wopts;
  wopts.store_path = f.store_path;
  const Status st = run_worker(wopts, in, out);
  ASSERT_TRUE(st.is_ok()) << st.to_string();

  std::rewind(out);
  std::vector<std::string> lines;
  char buf[1 << 16];
  while (std::fgets(buf, sizeof buf, out) != nullptr) {
    std::string line(buf);
    while (!line.empty() && line.back() == '\n') line.pop_back();
    lines.push_back(line);
  }
  std::fclose(in);
  std::fclose(out);

  ASSERT_EQ(lines.size(), 3u);
  Message hello, result, bye;
  ASSERT_TRUE(parse_message(lines[0], &hello));
  EXPECT_EQ(hello.type, MessageType::kHello);
  EXPECT_EQ(hello.packets, shared_trace().size());
  EXPECT_EQ(hello.cache_builds, 0u);  // mapped, never rebuilt
  ASSERT_TRUE(parse_message(lines[1], &result));
  ASSERT_EQ(result.type, MessageType::kResult) << lines[1];
  EXPECT_EQ(result.index, 0u);
  ASSERT_TRUE(parse_message(lines[2], &bye));
  EXPECT_EQ(bye.type, MessageType::kBye);
  EXPECT_EQ(bye.cells, 1u);

  // The RESULT payload decodes to exactly what the threaded path computes
  // for the same cell.
  std::vector<core::DisparityMetrics> reps;
  ASSERT_TRUE(exper::decode_replications(result.text, &reps));
  const auto want = threaded_reference(spec, 1);
  ASSERT_EQ(reps.size(), want.cells[0].result.replications.size());
  for (std::size_t r = 0; r < reps.size(); ++r) {
    expect_metrics_exact(reps[r], want.cells[0].result.replications[r]);
  }
}

TEST(ShardWorker, LeaseOutOfRangeFailsTheCellNotTheWorker) {
  const auto& f = fixture();
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  const std::string script = "LEASE 999\nSTOP\n";  // before any SPEC
  std::fwrite(script.data(), 1, script.size(), in);
  std::rewind(in);
  WorkerOptions wopts;
  wopts.store_path = f.store_path;
  ASSERT_TRUE(run_worker(wopts, in, out).is_ok());
  std::rewind(out);
  char buf[4096];
  ASSERT_NE(std::fgets(buf, sizeof buf, out), nullptr);  // HELLO
  ASSERT_NE(std::fgets(buf, sizeof buf, out), nullptr);  // FAIL
  Message fail;
  std::string line(buf);
  while (!line.empty() && line.back() == '\n') line.pop_back();
  ASSERT_TRUE(parse_message(line, &fail)) << line;
  EXPECT_EQ(fail.type, MessageType::kFail);
  EXPECT_EQ(fail.code, StatusCode::kInvalidArgument);
  std::fclose(in);
  std::fclose(out);
}

// ---------------------------------------------------------------------------
// Coordinator: multi-process bit-identity and failure drills.

TEST(ShardCoordinator, BitIdenticalToThreadedRunAtEveryWorkerCount) {
  const auto& f = fixture();
  const SweepSpec spec = small_spec();
  const auto want = threaded_reference(spec, 2);
  ASSERT_TRUE(want.all_ok());
  for (const int workers : {1, 2, 4}) {
    CoordinatorOptions opts;
    opts.workers = workers;
    opts.store_path = f.store_path;
    auto got = run_sharded_sweep(spec, opts);
    ASSERT_TRUE(got.has_value()) << got.status().to_string();
    expect_matches_reference(*got, want);
    EXPECT_EQ(got->worker_cache_builds, 0u) << "W=" << workers;
    EXPECT_EQ(got->workers_spawned, static_cast<std::uint64_t>(workers));
    EXPECT_EQ(got->workers_died, 0u);
  }
}

TEST(ShardCoordinator, WorkerDeathMidSweepReassignsAndStaysBitIdentical) {
  const auto& f = fixture();
  const SweepSpec spec = small_spec();
  const auto want = threaded_reference(spec, 1);
  CoordinatorOptions opts;
  opts.workers = 2;
  opts.store_path = f.store_path;
  opts.first_worker_die_after = 1;  // dies after its first RESULT
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value()) << got.status().to_string();
  expect_matches_reference(*got, want);
  EXPECT_EQ(got->workers_died, 1u);
  EXPECT_GE(got->workers_spawned, 3u);  // 2 initial + >= 1 respawn
  EXPECT_GE(got->reassignments, 1u);
}

TEST(ShardCoordinator, ChaosSigkillReassignsAndStaysBitIdentical) {
  const auto& f = fixture();
  const SweepSpec spec = small_spec();
  const auto want = threaded_reference(spec, 1);
  CoordinatorOptions opts;
  opts.workers = 2;
  opts.store_path = f.store_path;
  opts.chaos_kill_after = 1;
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value()) << got.status().to_string();
  expect_matches_reference(*got, want);
  EXPECT_EQ(got->workers_killed, 1u);
  // Whether the kill registers as an unexpected death is racy on a grid
  // this small: the victim's RESULT lines may already sit in the pipe, in
  // which case its leases drain normally and the EOF is reaped during
  // orderly shutdown. Deterministic death accounting is pinned by the
  // first_worker_die_after tests; here the invariant is convergence.
  EXPECT_LE(got->workers_died, 1u);
}

TEST(ShardCoordinator, SingleWorkerDeathRespawnsAndFinishes) {
  const auto& f = fixture();
  const SweepSpec spec = small_spec();
  const auto want = threaded_reference(spec, 1);
  CoordinatorOptions opts;
  opts.workers = 1;
  opts.store_path = f.store_path;
  opts.first_worker_die_after = 1;
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value()) << got.status().to_string();
  expect_matches_reference(*got, want);
  EXPECT_EQ(got->workers_died, 1u);
}

TEST(ShardCoordinator, RespawnBudgetExhaustionQuarantinesRemainingCells) {
  const auto& f = fixture();
  const SweepSpec spec = small_spec();
  CoordinatorOptions opts;
  opts.workers = 1;
  opts.store_path = f.store_path;
  opts.first_worker_die_after = 1;
  opts.max_respawns = 0;
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value()) << got.status().to_string();
  EXPECT_EQ(got->ok_count(), 1u);  // the one cell completed before the death
  EXPECT_FALSE(got->all_ok());
  EXPECT_EQ(got->first_failure().code(), StatusCode::kInternal);
}

TEST(ShardCoordinator, JournalMatchesThreadedJournalByteForByte) {
  const auto& f = fixture();
  const SweepSpec spec = small_spec();
  const auto grid =
      build_grid(spec, shared_trace().view(), f.mean_iat, &f.cache);

  const std::string threaded_path = temp_path("netsample_shard_jt.jsonl");
  const std::string sharded_path = temp_path("netsample_shard_js.jsonl");
  std::filesystem::remove(threaded_path);
  std::filesystem::remove(sharded_path);
  {
    auto j = exper::CheckpointJournal::open(threaded_path);
    ASSERT_TRUE(j.has_value());
    exper::ParallelRunner runner(2);
    exper::RunOptions ropts;
    ropts.journal = &*j;
    ASSERT_TRUE(runner.run(grid, spec.base_seed, ropts).all_ok());
  }
  {
    auto j = exper::CheckpointJournal::open(sharded_path);
    ASSERT_TRUE(j.has_value());
    CoordinatorOptions opts;
    opts.workers = 2;
    opts.store_path = f.store_path;
    opts.journal = &*j;
    auto got = run_sharded_sweep(spec, opts);
    ASSERT_TRUE(got.has_value());
    ASSERT_TRUE(got->all_ok());
  }
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::string a = slurp(threaded_path);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(sharded_path));
}

TEST(ShardCoordinator, FullyJournaledSweepSpawnsNoWorkers) {
  const auto& f = fixture();
  const SweepSpec spec = small_spec();
  const std::string path = temp_path("netsample_shard_replay.jsonl");
  std::filesystem::remove(path);
  {
    auto j = exper::CheckpointJournal::open(path);
    ASSERT_TRUE(j.has_value());
    CoordinatorOptions opts;
    opts.workers = 2;
    opts.store_path = f.store_path;
    opts.journal = &*j;
    ASSERT_TRUE(run_sharded_sweep(spec, opts).has_value());
  }
  auto j = exper::CheckpointJournal::open(path);
  ASSERT_TRUE(j.has_value());
  CoordinatorOptions opts;
  opts.workers = 2;
  opts.store_path = f.store_path;
  opts.journal = &*j;
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->all_ok());
  EXPECT_EQ(got->from_journal_count(), got->cells.size());
  EXPECT_EQ(got->workers_spawned, 0u);
  EXPECT_EQ(got->leases_granted, 0u);
  expect_matches_reference(*got, threaded_reference(spec, 1));
}

TEST(ShardCoordinator, RejectsZeroWorkers) {
  CoordinatorOptions opts;
  opts.workers = 0;
  opts.store_path = fixture().store_path;
  auto got = run_sharded_sweep(small_spec(), opts);
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardCoordinator, InvalidStoreSurfacesDataLossBeforeSpawning) {
  const std::string path = temp_path("netsample_shard_badstore.nstore");
  std::ofstream(path, std::ios::binary) << "not a store at all";
  CoordinatorOptions opts;
  opts.workers = 2;
  opts.store_path = path;
  auto got = run_sharded_sweep(small_spec(), opts);
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Socket transport + the network-failure model. Every drill below must end
// in the same bits as the threaded reference: the failure model recovers
// work, it never re-derives it.

CoordinatorOptions socket_opts() {
  CoordinatorOptions opts;
  opts.workers = 2;
  opts.store_path = fixture().store_path;
  opts.transport = TransportKind::kSocket;
  return opts;
}

TEST(ShardCoordinator, SocketBitIdenticalToThreadedRunAtEveryWorkerCount) {
  const SweepSpec spec = small_spec();
  const auto want = threaded_reference(spec, 2);
  ASSERT_TRUE(want.all_ok());
  for (const int workers : {1, 2, 4}) {
    CoordinatorOptions opts = socket_opts();
    opts.workers = workers;
    auto got = run_sharded_sweep(spec, opts);
    ASSERT_TRUE(got.has_value()) << got.status().to_string();
    expect_matches_reference(*got, want);
    EXPECT_EQ(got->worker_cache_builds, 0u) << "W=" << workers;
    EXPECT_EQ(got->workers_died, 0u);
  }
}

TEST(ShardCoordinator, SocketWorkerDeathReassignsAndStaysBitIdentical) {
  const SweepSpec spec = small_spec();
  CoordinatorOptions opts = socket_opts();
  opts.first_worker_die_after = 1;
  opts.reconnect_window_s = 2.0;  // the dead pid is reaped, not waited for
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value()) << got.status().to_string();
  expect_matches_reference(*got, threaded_reference(spec, 1));
  EXPECT_EQ(got->workers_died, 1u);
  EXPECT_GE(got->reassignments, 1u);
}

TEST(ShardCoordinator, CleanDepartureIsLoggedAsDepartureNotDeath) {
  const SweepSpec spec = small_spec();
  CoordinatorOptions opts;
  opts.workers = 2;
  opts.store_path = fixture().store_path;
  opts.first_worker_depart_after = 1;  // BYE after its first cell
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value()) << got.status().to_string();
  expect_matches_reference(*got, threaded_reference(spec, 1));
  EXPECT_EQ(got->workers_departed, 1u);
  EXPECT_EQ(got->workers_died, 0u);
}

TEST(ShardCoordinator, TornResultKillsTheWorkerAndNeverCommitsPartialBytes) {
  // One truncated RESULT: the worker's wire tears mid-line. The strict
  // framing discards the torn prefix, the sender is treated as lost, the
  // cell is recomputed — and the journal must be byte-for-byte what a
  // clean threaded run writes.
  const auto& f = fixture();
  const SweepSpec spec = small_spec();
  const auto grid =
      build_grid(spec, shared_trace().view(), f.mean_iat, &f.cache);

  const std::string clean_path = temp_path("netsample_shard_torn_ref.jsonl");
  const std::string torn_path = temp_path("netsample_shard_torn.jsonl");
  std::filesystem::remove(clean_path);
  std::filesystem::remove(torn_path);
  {
    auto j = exper::CheckpointJournal::open(clean_path);
    ASSERT_TRUE(j.has_value());
    exper::ParallelRunner runner(2);
    exper::RunOptions ropts;
    ropts.journal = &*j;
    ASSERT_TRUE(runner.run(grid, spec.base_seed, ropts).all_ok());
  }
  {
    auto j = exper::CheckpointJournal::open(torn_path);
    ASSERT_TRUE(j.has_value());
    CoordinatorOptions opts = socket_opts();
    opts.journal = &*j;
    opts.reconnect_window_s = 2.0;
    opts.netfault = "seed=11,trunc=1,max-faults=1";  // exactly one torn line
    auto got = run_sharded_sweep(spec, opts);
    ASSERT_TRUE(got.has_value()) << got.status().to_string();
    ASSERT_TRUE(got->all_ok()) << got->first_failure().to_string();
    expect_matches_reference(*got, threaded_reference(spec, 1));
    EXPECT_GE(got->reassignments + got->reconnects, 1u);
  }
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::string clean = slurp(clean_path);
  ASSERT_FALSE(clean.empty());
  EXPECT_EQ(clean, slurp(torn_path));
}

TEST(ShardCoordinator, DroppedLeaseConvergesViaLeaseExpiry) {
  // The first impairable line the (single) worker sees is its first LEASE,
  // and it vanishes. Only the lease-expiry timer can recover the cell —
  // the wire is healthy, the worker simply never heard the grant.
  const SweepSpec spec = small_spec();
  CoordinatorOptions opts;
  opts.workers = 1;
  opts.store_path = fixture().store_path;
  opts.netfault = "seed=2,drop=1,max-faults=1";
  opts.lease_timeout_s = 0.3;
  opts.heartbeat_interval_s = 0.05;  // PONGs lift the post-expiry suspension
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value()) << got.status().to_string();
  ASSERT_TRUE(got->all_ok()) << got->first_failure().to_string();
  expect_matches_reference(*got, threaded_reference(spec, 1));
  EXPECT_GE(got->leases_expired, 1u);
  EXPECT_GE(got->pings_sent, 1u);
}

TEST(ShardCoordinator, DuplicatedResultsAreCommittedExactlyOnce) {
  const SweepSpec spec = small_spec();
  CoordinatorOptions opts;
  opts.workers = 2;
  opts.store_path = fixture().store_path;
  opts.netfault = "seed=4,dup=1";  // every RESULT arrives twice
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value()) << got.status().to_string();
  ASSERT_TRUE(got->all_ok()) << got->first_failure().to_string();
  // Byte-equality with the reference is the single-commit proof: a second
  // acceptance would have overwritten or doubled a cell's replications.
  expect_matches_reference(*got, threaded_reference(spec, 1));
}

TEST(ShardCoordinator, FlappingWireReconnectsAndConverges) {
  const SweepSpec spec = small_spec();
  CoordinatorOptions opts = socket_opts();
  opts.reconnect_window_s = 5.0;
  opts.netfault = "seed=6,disconnect-every=3";  // the wire flaps constantly
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value()) << got.status().to_string();
  ASSERT_TRUE(got->all_ok()) << got->first_failure().to_string();
  expect_matches_reference(*got, threaded_reference(spec, 1));
  EXPECT_GE(got->reconnects, 1u);
  EXPECT_EQ(got->workers_died, 0u);  // flapping is not dying
}

TEST(ShardCoordinator, SocketChaosSigkillReassignsAndStaysBitIdentical) {
  const SweepSpec spec = small_spec();
  CoordinatorOptions opts = socket_opts();
  opts.chaos_kill_after = 1;
  opts.reconnect_window_s = 2.0;
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value()) << got.status().to_string();
  expect_matches_reference(*got, threaded_reference(spec, 1));
  EXPECT_EQ(got->workers_killed, 1u);
  EXPECT_LE(got->workers_died, 1u);  // see ChaosSigkill above for the race
}

TEST(ShardCoordinator, SocketRespawnBudgetExhaustionFailsClosed) {
  const SweepSpec spec = small_spec();
  CoordinatorOptions opts = socket_opts();
  opts.workers = 1;
  opts.first_worker_die_after = 1;
  opts.max_respawns = 0;
  opts.reconnect_window_s = 1.0;
  auto got = run_sharded_sweep(spec, opts);
  ASSERT_TRUE(got.has_value()) << got.status().to_string();
  EXPECT_EQ(got->ok_count(), 1u);
  EXPECT_FALSE(got->all_ok());
  EXPECT_EQ(got->first_failure().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace netsample::shard
