// The public facade (src/netsample/): version constants, the unified
// Table / emit() / csv_line() / json_line() presentation layer, and the
// as_result() adapter from exper::RunReport.
#include "netsample/netsample.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace netsample {
namespace {

TEST(FacadeVersion, ConstantsAgree) {
  // v1.1: MINOR steps by 100 per minor release, so "1.1" encodes as 1100.
  EXPECT_EQ(NETSAMPLE_API_VERSION, 1100);
  EXPECT_EQ(kApiVersionMajor, NETSAMPLE_API_VERSION_MAJOR);
  EXPECT_EQ(kApiVersionMinor, NETSAMPLE_API_VERSION_MINOR);
  EXPECT_EQ(std::string(kApiVersionString),
            std::to_string(kApiVersionMajor) + "." +
                std::to_string(kApiVersionMinor / 100));
}

TEST(RowEmitter, CsvLineQuotesOnlyWhenNeeded) {
  const std::vector<std::string> fields = {"a,b", "q\"x", "plain"};
  EXPECT_EQ(csv_line(fields), "\"a,b\",\"q\"\"x\",plain");
  EXPECT_EQ(csv_line(fields, "CSV"), "CSV,\"a,b\",\"q\"\"x\",plain");
}

TEST(RowEmitter, JsonLineDetectsNumbers) {
  const std::vector<std::string> columns = {"k", "phi", "label", "bad"};
  const std::vector<std::string> cells = {"64", "0.125", "size/r0", "nan"};
  // Numeric cells stay bare; text and JSON-invalid numerics get quoted.
  EXPECT_EQ(json_line(columns, cells),
            R"({"k":64,"phi":0.125,"label":"size/r0","bad":"nan"})");
}

TEST(RowEmitter, JsonLineEscapesControlCharacters) {
  const std::vector<std::string> columns = {"c"};
  const std::vector<std::string> cells = {"a\"b\\c\nd"};
  EXPECT_EQ(json_line(columns, cells), R"({"c":"a\"b\\c\nd"})");
}

TEST(RowEmitter, JsonLineRejectsMismatchedWidths) {
  const std::vector<std::string> columns = {"a", "b"};
  const std::vector<std::string> cells = {"1"};
  EXPECT_THROW((void)json_line(columns, cells), std::invalid_argument);
}

TEST(RowEmitter, TableRejectsWrongWidthRows) {
  Table t;
  t.columns = {"a", "b"};
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows.size(), 1u);
}

TEST(RowEmitter, EmitRendersAllThreeFormats) {
  Table t;
  t.columns = {"name", "value"};
  t.add_row({"alpha", "1"});
  t.add_row({"beta, the second", "2"});

  std::ostringstream csv;
  emit(t, RowFormat::kCsv, csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1\n\"beta, the second\",2\n");

  std::ostringstream csv_prefixed;
  EmitOptions options;
  options.csv_header = false;
  options.csv_prefix = "CSV";
  emit(t, RowFormat::kCsv, csv_prefixed, options);
  EXPECT_EQ(csv_prefixed.str(), "CSV,alpha,1\nCSV,\"beta, the second\",2\n");

  std::ostringstream jsonl;
  emit(t, RowFormat::kJsonLines, jsonl);
  EXPECT_EQ(jsonl.str(),
            "{\"name\":\"alpha\",\"value\":1}\n"
            "{\"name\":\"beta, the second\",\"value\":2}\n");

  std::ostringstream aligned;
  emit(t, RowFormat::kAligned, aligned);
  EXPECT_NE(aligned.str().find("alpha"), std::string::npos);
  EXPECT_NE(aligned.str().find("beta, the second"), std::string::npos);
}

exper::CellOutcome ok_outcome(std::uint64_t k, double phi) {
  exper::CellOutcome cell;
  cell.status = Status::ok();
  cell.attempts = 1;
  cell.result.config.method = core::Method::kSystematicCount;
  cell.result.config.target = core::Target::kPacketSize;
  cell.result.config.granularity = k;
  core::DisparityMetrics m{};
  m.phi = phi;
  m.sample_n = 100;
  m.population_n = 100 * k;
  cell.result.replications.push_back(m);
  return cell;
}

TEST(AsResult, AllOkReportIsOkAndFullyPopulated) {
  exper::RunReport report;
  report.cells.push_back(ok_outcome(16, 0.125));
  report.cells.push_back(ok_outcome(64, 0.25));

  const auto result = as_result(report);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(static_cast<bool>(result));
  ASSERT_TRUE(result.value.has_value());
  EXPECT_EQ(result->cells.size(), 2u);
  EXPECT_TRUE(result->quarantined().empty());

  ASSERT_EQ(result.rows.rows.size(), 2u);
  const auto& row = result.rows.rows[0];
  ASSERT_EQ(row.size(), result.rows.columns.size());
  EXPECT_EQ(row[0], "0");
  EXPECT_EQ(row[3], "16");           // k
  EXPECT_EQ(row[4], "ok");           // status
  EXPECT_EQ(row[6], fmt_double(0.125, 4));  // phi mean
  EXPECT_EQ(result.rows.rows[1][3], "64");
}

TEST(AsResult, QuarantinedCellPadsMetricsAndCarriesFirstFailure) {
  exper::RunReport report;
  report.cells.push_back(ok_outcome(16, 0.125));
  exper::CellOutcome bad;
  bad.status = Status(StatusCode::kInternal, "injected fault");
  bad.attempts = 3;
  bad.result.config.method = core::Method::kSimpleRandom;
  bad.result.config.target = core::Target::kInterarrivalTime;
  bad.result.config.granularity = 256;
  report.cells.push_back(bad);

  const auto result = as_result(report);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  // Partial value still present: the sweep quarantines, it does not lose.
  ASSERT_TRUE(result.value.has_value());
  EXPECT_EQ(result->quarantined(), std::vector<std::size_t>{1});

  const auto& bad_row = result.rows.rows[1];
  EXPECT_EQ(bad_row[5], "3");  // attempts
  EXPECT_EQ(bad_row[6], "-");  // phi columns padded, not garbage
  EXPECT_EQ(bad_row[9], "-");
  // operator* still yields the partial report rather than throwing.
  EXPECT_EQ((*result).cells.size(), 2u);
}

TEST(AsResult, EmptyValueDereferenceThrows) {
  Result<int> result;
  result.status = Status(StatusCode::kInternal, "no value");
  EXPECT_THROW((void)*result, StatusError);
}

}  // namespace
}  // namespace netsample
