#include "net/ipv4.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace netsample::net {
namespace {

TEST(Ipv4Address, ConstructFromOctets) {
  const Ipv4Address a(132, 249, 1, 5);
  EXPECT_EQ(a.value(), 0x84F90105u);
  EXPECT_EQ(a.octet(0), 132);
  EXPECT_EQ(a.octet(1), 249);
  EXPECT_EQ(a.octet(2), 1);
  EXPECT_EQ(a.octet(3), 5);
}

TEST(Ipv4Address, ToString) {
  EXPECT_EQ(Ipv4Address(10, 0, 0, 1).to_string(), "10.0.0.1");
  EXPECT_EQ(Ipv4Address(255, 255, 255, 255).to_string(), "255.255.255.255");
}

TEST(Ipv4Address, ParseValid) {
  const auto a = Ipv4Address::parse("192.203.230.10");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "192.203.230.10");
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d",
                          "1.2.3.4x", "1..2.3"}) {
    EXPECT_FALSE(Ipv4Address::parse(bad).has_value()) << bad;
  }
}

TEST(Ipv4Address, ParseRoundTripsToString) {
  for (const char* s : {"0.0.0.0", "132.249.20.33", "223.255.255.254"}) {
    const auto a = Ipv4Address::parse(s);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->to_string(), s);
  }
}

TEST(AddressClass, ClassfulBoundaries) {
  EXPECT_EQ(address_class(Ipv4Address(0, 0, 0, 1)), AddressClass::kA);
  EXPECT_EQ(address_class(Ipv4Address(127, 255, 255, 255)), AddressClass::kA);
  EXPECT_EQ(address_class(Ipv4Address(128, 0, 0, 1)), AddressClass::kB);
  EXPECT_EQ(address_class(Ipv4Address(191, 255, 0, 1)), AddressClass::kB);
  EXPECT_EQ(address_class(Ipv4Address(192, 0, 0, 1)), AddressClass::kC);
  EXPECT_EQ(address_class(Ipv4Address(223, 255, 255, 1)), AddressClass::kC);
  EXPECT_EQ(address_class(Ipv4Address(224, 0, 0, 1)), AddressClass::kD);
  EXPECT_EQ(address_class(Ipv4Address(240, 0, 0, 1)), AddressClass::kE);
}

TEST(NetworkNumber, ClassAMasksTo8) {
  const auto n = NetworkNumber::of(Ipv4Address(10, 1, 2, 3));
  EXPECT_EQ(n.prefix_len(), 8);
  EXPECT_EQ(n.to_string(), "10.0.0.0/8");
}

TEST(NetworkNumber, ClassBMasksTo16) {
  const auto n = NetworkNumber::of(Ipv4Address(132, 249, 20, 33));
  EXPECT_EQ(n.prefix_len(), 16);
  EXPECT_EQ(n.to_string(), "132.249.0.0/16");
}

TEST(NetworkNumber, ClassCMasksTo24) {
  const auto n = NetworkNumber::of(Ipv4Address(192, 203, 230, 10));
  EXPECT_EQ(n.prefix_len(), 24);
  EXPECT_EQ(n.to_string(), "192.203.230.0/24");
}

TEST(NetworkNumber, HostsOnSameNetworkShareNumber) {
  const auto a = NetworkNumber::of(Ipv4Address(132, 249, 1, 1));
  const auto b = NetworkNumber::of(Ipv4Address(132, 249, 200, 9));
  EXPECT_EQ(a, b);
}

TEST(NetworkNumber, DifferentNetworksDiffer) {
  const auto a = NetworkNumber::of(Ipv4Address(132, 249, 1, 1));
  const auto b = NetworkNumber::of(Ipv4Address(132, 250, 1, 1));
  EXPECT_NE(a, b);
}

TEST(NetworkNumber, MulticastKeysOnFullAddress) {
  const auto a = NetworkNumber::of(Ipv4Address(224, 0, 0, 5));
  EXPECT_EQ(a.prefix_len(), 32);
}

TEST(Ipv4Address, Hashable) {
  std::unordered_set<Ipv4Address> set;
  set.insert(Ipv4Address(1, 2, 3, 4));
  set.insert(Ipv4Address(1, 2, 3, 4));
  set.insert(Ipv4Address(1, 2, 3, 5));
  EXPECT_EQ(set.size(), 2u);
}

TEST(NetworkNumber, Hashable) {
  std::unordered_set<NetworkNumber> set;
  set.insert(NetworkNumber::of(Ipv4Address(132, 249, 1, 1)));
  set.insert(NetworkNumber::of(Ipv4Address(132, 249, 9, 9)));
  EXPECT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace netsample::net
