// The fused sweep engine's headline guarantee: over the full fig06-fig11
// grid, the cache fast path produces BIT-IDENTICAL CellResults to the
// legacy streaming scan, at one thread and at N threads — plus the
// per-replication index sets agree, the legacy-scan switch really routes,
// and granularity sweeps bin the population exactly once (legacy) or never
// (fast path).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/select_indices.h"
#include "core/trace_cache.h"
#include "exper/experiment.h"
#include "exper/parallel.h"
#include "exper/runner.h"

namespace netsample {
namespace {

/// Scoped legacy/fast routing: restores the environment default on exit so
/// test order can't leak a forced path into other tests.
struct ScanGuard {
  explicit ScanGuard(bool legacy) { core::force_legacy_scan(legacy); }
  ~ScanGuard() { core::clear_legacy_scan_override(); }
};

class FastPathTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ex_ = new exper::Experiment(23, 3.0); }
  static void TearDownTestSuite() {
    delete ex_;
    ex_ = nullptr;
  }

  /// The union of the paper-figure grids, scaled onto the 3-minute test
  /// trace (same shape as test_parallel.cpp's figure_grid).
  static std::vector<exper::GridTask> figure_grid() {
    std::vector<exper::GridTask> tasks;
    const auto& cache = ex_->binned_cache();

    exper::CellConfig base;
    base.interval = ex_->interval(120.0);
    base.mean_interarrival_usec = ex_->mean_interarrival_usec();
    base.cache = &cache;

    // fig06/07: systematic ladder with offset replications.
    for (std::uint64_t k : exper::granularity_ladder(4, 32768)) {
      exper::CellConfig cfg = base;
      cfg.method = core::Method::kSystematicCount;
      cfg.target = core::Target::kPacketSize;
      cfg.granularity = k;
      cfg.replications = static_cast<int>(std::min<std::uint64_t>(k, 50));
      tasks.push_back({cfg, 0});
    }

    // fig08/09: five methods x ladder x both targets.
    for (auto target :
         {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
      for (std::uint64_t k : exper::granularity_ladder(4, 16384)) {
        for (auto m :
             {core::Method::kSystematicCount, core::Method::kStratifiedCount,
              core::Method::kSimpleRandom, core::Method::kSystematicTimer,
              core::Method::kStratifiedTimer}) {
          exper::CellConfig cfg = base;
          cfg.method = m;
          cfg.target = target;
          cfg.granularity = k;
          cfg.replications = 5;
          tasks.push_back({cfg, 0});
        }
      }
    }

    // fig10/11: growing windows x {16, 256, 4096} x both targets.
    const std::vector<double> seconds = {12, 18, 27, 40, 60, 90, 140, 170};
    for (auto target :
         {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
      for (std::size_t i = 0; i < seconds.size(); ++i) {
        for (std::uint64_t k : {16ULL, 256ULL, 4096ULL}) {
          exper::CellConfig cfg = base;
          cfg.method = core::Method::kSystematicCount;
          cfg.target = target;
          cfg.granularity = k;
          cfg.interval = ex_->full().prefix_duration(
              MicroDuration::from_seconds(seconds[i]));
          cfg.replications = 5;
          tasks.push_back({cfg, static_cast<std::uint64_t>(i)});
        }
      }
    }
    return tasks;
  }

  static void expect_bit_identical(const std::vector<exper::CellResult>& a,
                                   const std::vector<exper::CellResult>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].replications.size(), b[i].replications.size())
          << "cell " << i;
      for (std::size_t r = 0; r < a[i].replications.size(); ++r) {
        const auto& ma = a[i].replications[r];
        const auto& mb = b[i].replications[r];
        // Exact double equality: identical histogram counts must flow into
        // identical metrics, bit for bit.
        EXPECT_EQ(ma.chi2, mb.chi2) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.dof, mb.dof) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.significance, mb.significance) << "cell " << i;
        EXPECT_EQ(ma.cost, mb.cost) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.rcost, mb.rcost) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.x2, mb.x2) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.avg_norm_dev, mb.avg_norm_dev) << "cell " << i;
        EXPECT_EQ(ma.phi, mb.phi) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.sample_n, mb.sample_n) << "cell " << i << " rep " << r;
        EXPECT_EQ(ma.population_n, mb.population_n) << "cell " << i;
      }
    }
  }

  static exper::Experiment* ex_;
};

exper::Experiment* FastPathTest::ex_ = nullptr;

TEST_F(FastPathTest, RoutingFollowsCacheAndSwitch) {
  exper::CellConfig cfg;
  cfg.interval = ex_->interval(30.0);
  EXPECT_FALSE(exper::cell_uses_fast_path(cfg));  // no cache attached
  cfg.cache = &ex_->binned_cache();
  EXPECT_TRUE(exper::cell_uses_fast_path(cfg));
  {
    ScanGuard legacy(true);
    EXPECT_FALSE(exper::cell_uses_fast_path(cfg));
  }
  EXPECT_TRUE(exper::cell_uses_fast_path(cfg));
  // A view over foreign storage cannot be served by this cache.
  const exper::Experiment other(24, 0.5);
  cfg.interval = other.full();
  EXPECT_FALSE(exper::cell_uses_fast_path(cfg));
}

TEST_F(FastPathTest, FullFigureGridBitIdenticalLegacyVsFastVsThreaded) {
  const auto tasks = figure_grid();
  std::vector<exper::CellResult> legacy, fast1, fastN;
  {
    ScanGuard guard(true);
    exper::ParallelRunner serial(1);
    legacy = serial.run(tasks, 23);
  }
  {
    ScanGuard guard(false);
    exper::ParallelRunner serial(1);
    exper::ParallelRunner threaded(4);
    fast1 = serial.run(tasks, 23);
    fastN = threaded.run(tasks, 23);
  }
  expect_bit_identical(legacy, fast1);
  expect_bit_identical(fast1, fastN);
}

TEST_F(FastPathTest, ReplicationIndexSetsMatchStreamingPerMethod) {
  const auto& cache = ex_->binned_cache();
  const auto interval = ex_->interval(60.0);
  const std::size_t begin = cache.offset_of(interval);
  const std::size_t end = begin + interval.size();

  for (auto m : {core::Method::kSystematicCount, core::Method::kStratifiedCount,
                 core::Method::kSimpleRandom, core::Method::kSystematicTimer,
                 core::Method::kStratifiedTimer}) {
    exper::CellConfig cfg;
    cfg.method = m;
    cfg.granularity = 64;
    cfg.interval = interval;
    cfg.mean_interarrival_usec = ex_->mean_interarrival_usec();
    cfg.replications = 7;
    cfg.base_seed = 555;
    for (int r = 0; r < cfg.replications; ++r) {
      const auto spec = exper::replication_spec(cfg, r);
      auto sampler = core::make_sampler(spec);
      EXPECT_EQ(core::select_indices(spec, cache, begin, end),
                core::draw_sample_indices(interval, *sampler))
          << core::method_name(m) << " rep " << r;
    }
  }
}

TEST_F(FastPathTest, SweepBinsPopulationOnceLegacyNeverFast) {
  exper::CellConfig base;
  base.method = core::Method::kStratifiedCount;
  base.target = core::Target::kInterarrivalTime;
  base.interval = ex_->interval(60.0);
  base.mean_interarrival_usec = ex_->mean_interarrival_usec();
  base.replications = 3;
  base.cache = &ex_->binned_cache();
  const std::vector<std::uint64_t> ladder = {4, 16, 64, 256};

  {
    // Legacy: the whole ladder shares ONE population materialization.
    ScanGuard guard(true);
    const auto before = core::population_values_call_count();
    const auto cells = exper::sweep_granularity(base, ladder);
    ASSERT_EQ(cells.size(), ladder.size());
    EXPECT_EQ(core::population_values_call_count() - before, 1u);
  }
  {
    // Fast path: prefix-sum subtraction, never materialized.
    ScanGuard guard(false);
    const auto before = core::population_values_call_count();
    const auto cells = exper::sweep_granularity(base, ladder);
    ASSERT_EQ(cells.size(), ladder.size());
    EXPECT_EQ(core::population_values_call_count() - before, 0u);
  }
}

TEST_F(FastPathTest, SweepHelpersAgreeAcrossPathsAndThreadCounts) {
  exper::CellConfig base;
  base.method = core::Method::kSimpleRandom;
  base.target = core::Target::kPacketSize;
  base.interval = ex_->interval(45.0);
  base.mean_interarrival_usec = ex_->mean_interarrival_usec();
  base.replications = 5;
  base.base_seed = 42;
  base.cache = &ex_->binned_cache();

  const std::vector<std::uint64_t> ks = {2, 8, 128, 2048};
  const std::vector<double> secs = {15.0, 60.0, 150.0};
  std::vector<exper::CellResult> g_legacy, i_legacy;
  {
    ScanGuard guard(true);
    exper::ParallelRunner serial(1);
    g_legacy = serial.sweep_granularity(base, ks);
    i_legacy = serial.sweep_interval(base, ex_->full(), secs);
  }
  ScanGuard guard(false);
  exper::ParallelRunner threaded(3);
  expect_bit_identical(g_legacy, threaded.sweep_granularity(base, ks));
  expect_bit_identical(i_legacy,
                       threaded.sweep_interval(base, ex_->full(), secs));
}

}  // namespace
}  // namespace netsample
