#include "trace/trains.h"

#include <gtest/gtest.h>

#include "synth/presets.h"

namespace netsample::trace {
namespace {

PacketRecord pkt(std::uint64_t usec, std::uint16_t size = 100) {
  PacketRecord p;
  p.timestamp = MicroTime{usec};
  p.size = size;
  return p;
}

TEST(DetectTrains, SplitsOnLargeGaps) {
  // Two trains: {0, 500, 1000} and {10000, 10500}, threshold 2000us.
  Trace t({pkt(0), pkt(500), pkt(1000), pkt(10000), pkt(10500)});
  const auto trains = detect_trains(t.view(), MicroDuration{2000});
  ASSERT_EQ(trains.size(), 2u);
  EXPECT_EQ(trains[0].packets, 3u);
  EXPECT_EQ(trains[0].first_index, 0u);
  EXPECT_EQ(trains[0].duration().usec, 1000);
  EXPECT_EQ(trains[1].packets, 2u);
  EXPECT_EQ(trains[1].first_index, 3u);
}

TEST(DetectTrains, BoundaryGapEqualToThresholdJoins) {
  Trace t({pkt(0), pkt(2000)});
  EXPECT_EQ(detect_trains(t.view(), MicroDuration{2000}).size(), 1u);
  EXPECT_EQ(detect_trains(t.view(), MicroDuration{1999}).size(), 2u);
}

TEST(DetectTrains, SinglePacketIsOneTrain) {
  Trace t({pkt(42)});
  const auto trains = detect_trains(t.view(), MicroDuration{1000});
  ASSERT_EQ(trains.size(), 1u);
  EXPECT_EQ(trains[0].packets, 1u);
  EXPECT_EQ(trains[0].duration().usec, 0);
}

TEST(DetectTrains, EmptyViewYieldsNoTrains) {
  EXPECT_TRUE(detect_trains(TraceView{}, MicroDuration{1000}).empty());
}

TEST(DetectTrains, InvalidThresholdThrows) {
  Trace t({pkt(0)});
  EXPECT_THROW((void)detect_trains(t.view(), MicroDuration{0}),
               std::invalid_argument);
}

TEST(DetectTrains, BytesAccumulate) {
  Trace t({pkt(0, 40), pkt(100, 552), pkt(200, 40)});
  const auto trains = detect_trains(t.view(), MicroDuration{1000});
  ASSERT_EQ(trains.size(), 1u);
  EXPECT_EQ(trains[0].bytes, 632u);
}

TEST(TrainStats, AggregatesCorrectly) {
  Trace t({pkt(0), pkt(500), pkt(1000), pkt(10000), pkt(10500)});
  const auto s = train_stats(t.view(), MicroDuration{2000});
  EXPECT_EQ(s.trains, 2u);
  EXPECT_DOUBLE_EQ(s.mean_length_packets, 2.5);
  EXPECT_DOUBLE_EQ(s.mean_duration_usec, 750.0);  // (1000 + 500) / 2
  EXPECT_DOUBLE_EQ(s.mean_intertrain_gap_usec, 9000.0);
  EXPECT_DOUBLE_EQ(s.interior_fraction, 3.0 / 5.0);
}

TEST(TrainStats, SyntheticWorkloadHasTrains) {
  // The calibrated workload must show genuine train structure; the
  // poissonified ablation must show much less.
  synth::TraceModel bursty_model(synth::sdsc_minutes_config(2.0, 51));
  const auto bursty = bursty_model.generate();
  synth::TraceModel poisson_model(
      synth::poissonified(synth::sdsc_minutes_config(2.0, 51)));
  const auto poisson = poisson_model.generate();

  const auto threshold = MicroDuration{2400};  // ~ the within-train regime
  const auto sb = train_stats(bursty.view(), threshold);
  const auto sp = train_stats(poisson.view(), threshold);
  EXPECT_GT(sb.mean_length_packets, sp.mean_length_packets);
  EXPECT_GT(sb.interior_fraction, sp.interior_fraction);
  EXPECT_GT(sb.mean_length_packets, 1.5);
}

}  // namespace
}  // namespace netsample::trace
