// Statistical conformance suite: the samplers' outputs behave like the
// statistics they claim to implement, with no tuned tolerances.
//
//   (a) Null sampling (sample = parent) scores phi EXACTLY 0 — not "near
//       0" — for every method/target/path, pinning the score_counts
//       reformulation that makes expected counts exact under the identity
//       sample.
//   (b) Systematic count samples of the synthetic trace are statistically
//       compatible with the parent: every replication's chi-squared
//       significance stays above 0.001 (i.e. the statistic is below the
//       99.9% quantile of its chi-squared distribution), the paper's own
//       Section 6 acceptance threshold family.
//   (c) Sample sizes are unbiased: stratified 1-in-k draws average n/k
//       over 64 seeded replications (within 3 sigma of the exact Bernoulli
//       sampling distribution of that mean), and simple random draws are
//       exactly max(1, round(N/k)) every time.
//
// Everything is seeded; a failure here is a real regression, never flake.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/metrics.h"
#include "core/select_indices.h"
#include "core/samplers.h"
#include "core/trace_cache.h"
#include "exper/experiment.h"
#include "exper/runner.h"

namespace netsample {
namespace {

/// Scoped legacy/fast routing (same idiom as test_fastpath.cpp).
struct ScanGuard {
  explicit ScanGuard(bool legacy) { core::force_legacy_scan(legacy); }
  ~ScanGuard() { core::clear_legacy_scan_override(); }
};

class ConformanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ex_ = new exper::Experiment(23, 3.0); }
  static void TearDownTestSuite() {
    delete ex_;
    ex_ = nullptr;
  }
  static exper::Experiment* ex_;
};

exper::Experiment* ConformanceTest::ex_ = nullptr;

// (a) A 1-in-1 sample IS the parent, so every disparity metric must vanish
// identically: expected counts are computed as population * (n_obs/n_pop),
// which is exact (not within-epsilon) when the two histograms coincide.
TEST_F(ConformanceTest, NullSamplingScoresExactlyZeroForCountMethods) {
  const core::Method methods[] = {core::Method::kSystematicCount,
                                  core::Method::kStratifiedCount,
                                  core::Method::kSimpleRandom};
  for (const bool legacy : {false, true}) {
    ScanGuard guard(legacy);
    for (const auto target :
         {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
      for (const auto method : methods) {
        exper::CellConfig cfg;
        cfg.method = method;
        cfg.target = target;
        cfg.granularity = 1;  // select everything
        cfg.interval = ex_->interval(60.0);
        cfg.mean_interarrival_usec = ex_->mean_interarrival_usec();
        // Systematic 1-in-1 has a single valid offset; the random methods
        // get a few seeds to show the property is seed-independent.
        cfg.replications =
            method == core::Method::kSystematicCount ? 1 : 3;
        cfg.base_seed = 77;
        cfg.cache = &ex_->binned_cache();
        const auto cell = exper::run_cell(cfg);
        for (const auto& m : cell.replications) {
          EXPECT_EQ(m.phi, 0.0)
              << core::method_name(method) << "/" << core::target_name(target)
              << (legacy ? " legacy" : " fast");
          EXPECT_EQ(m.chi2, 0.0);
          EXPECT_EQ(m.cost, 0.0);
          EXPECT_EQ(m.significance, 1.0);
          EXPECT_EQ(m.sample_n, m.population_n);
        }
      }
    }
  }
}

// (a, timer methods) A timer sampler can never emit the identity sample —
// its first deadline is strictly after the interval start, so packet 0 is
// unreachable at any period. The null-sampling property for the timer path
// is therefore pinned at the scoring layer, which is method-blind: the
// index set "everything" (what a timer would yield if every deadline hit a
// fresh packet, including the first) must score exactly 0.
TEST_F(ConformanceTest, NullIndexSetScoresExactlyZeroAtTheScoringLayer) {
  const auto& cache = ex_->binned_cache();
  const auto view = ex_->interval(60.0);
  const std::size_t begin = cache.offset_of(view);
  std::vector<std::size_t> all(view.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  for (const auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    const auto sample = cache.sample_histogram(target, all, begin);
    const auto pop =
        cache.population_histogram(target, begin, begin + view.size());
    const auto m = core::score_sample(sample, pop, 1.0);
    EXPECT_EQ(m.phi, 0.0) << core::target_name(target);
    EXPECT_EQ(m.chi2, 0.0);
    EXPECT_EQ(m.cost, 0.0);
    EXPECT_EQ(m.rcost, 0.0);
  }
}

// (b) Systematic count sampling is the paper's baseline "good" method: its
// samples of the (randomly generated, burst-structured) synthetic trace
// must be accepted by the chi-squared test at the 0.1% level in every
// replication — the statistic stays below the 99.9% quantile of
// chi-squared with the target's degrees of freedom.
TEST_F(ConformanceTest, SystematicSamplesPassChiSquaredAtTheMille) {
  for (const auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    for (const std::uint64_t k : {2ULL, 16ULL, 256ULL}) {
      exper::CellConfig cfg;
      cfg.method = core::Method::kSystematicCount;
      cfg.target = target;
      cfg.granularity = k;
      cfg.interval = ex_->interval(120.0);
      cfg.mean_interarrival_usec = ex_->mean_interarrival_usec();
      cfg.replications = static_cast<int>(std::min<std::uint64_t>(k, 16));
      cfg.base_seed = 23;
      cfg.cache = &ex_->binned_cache();
      const auto cell = exper::run_cell(cfg);
      for (std::size_t r = 0; r < cell.replications.size(); ++r) {
        const auto& m = cell.replications[r];
        EXPECT_GT(m.significance, 0.001)
            << core::target_name(target) << " k=" << k << " rep " << r
            << " chi2=" << m.chi2;
      }
    }
  }
}

// (c) Stratified 1-in-k selects one packet from every complete bucket of k
// and one from the final partial bucket of r = n mod k packets with
// probability r/k, so E[sample size] = n/k exactly. The mean over 64
// seeded replications must land within 3 sigma of that expectation, where
// sigma is the EXACT standard deviation of the mean (only the partial
// bucket is random: sqrt(p(1-p)/reps)). No tuned tolerance anywhere.
TEST_F(ConformanceTest, StratifiedSampleSizesAreUnbiased) {
  const auto& cache = ex_->binned_cache();
  const std::uint64_t k = 64;
  std::size_t n = cache.size();
  ASSERT_GT(n, k * 4);
  while (n % k == 0) --n;  // guarantee a partial final bucket

  const double p = static_cast<double>(n % k) / static_cast<double>(k);
  const double expected = static_cast<double>(n) / static_cast<double>(k);
  constexpr int kReps = 64;
  const std::uint64_t whole_buckets = n / k;

  double sum = 0;
  for (int r = 0; r < kReps; ++r) {
    core::SamplerSpec spec;
    spec.method = core::Method::kStratifiedCount;
    spec.granularity = k;
    spec.seed = 1000 + static_cast<std::uint64_t>(r);
    const auto indices = core::select_indices(spec, cache, 0, n);
    // Size is q or q+1, never anything else.
    ASSERT_GE(indices.size(), whole_buckets);
    ASSERT_LE(indices.size(), whole_buckets + 1);
    sum += static_cast<double>(indices.size());
  }
  const double mean = sum / kReps;
  const double sigma_of_mean = std::sqrt(p * (1.0 - p) / kReps);
  EXPECT_NEAR(mean, expected, 3.0 * sigma_of_mean)
      << "n=" << n << " k=" << k << " p=" << p;
}

// (c) Simple random sampling draws EXACTLY n = max(1, round(N/k)) packets
// — Algorithm S guarantees the count, randomizing only the positions.
TEST_F(ConformanceTest, SimpleRandomSampleSizeIsExact) {
  const auto& cache = ex_->binned_cache();
  const std::size_t n = cache.size();
  for (const std::uint64_t k : {4ULL, 64ULL, 1000ULL}) {
    core::SamplerSpec spec;
    spec.method = core::Method::kSimpleRandom;
    spec.granularity = k;
    spec.population = n;
    const std::uint64_t want = core::spec_simple_random_n(spec);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      spec.seed = seed;
      EXPECT_EQ(core::select_indices(spec, cache, 0, n).size(), want)
          << "k=" << k << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace netsample
