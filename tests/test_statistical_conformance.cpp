// Statistical conformance suite: the samplers' outputs behave like the
// statistics they claim to implement, with no tuned tolerances.
//
//   (a) Null sampling (sample = parent) scores phi EXACTLY 0 — not "near
//       0" — for every method/target/path, pinning the score_counts
//       reformulation that makes expected counts exact under the identity
//       sample.
//   (b) Systematic count samples of the synthetic trace are statistically
//       compatible with the parent: every replication's chi-squared
//       significance stays above 0.001 (i.e. the statistic is below the
//       99.9% quantile of its chi-squared distribution), the paper's own
//       Section 6 acceptance threshold family.
//   (c) Sample sizes are unbiased: stratified 1-in-k draws average n/k
//       over 64 seeded replications (within 3 sigma of the exact Bernoulli
//       sampling distribution of that mean), and simple random draws are
//       exactly max(1, round(N/k)) every time.
//
// Everything is seeded; a failure here is a real regression, never flake.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/metrics.h"
#include "core/select_indices.h"
#include "core/samplers.h"
#include "core/trace_cache.h"
#include "exper/experiment.h"
#include "exper/runner.h"
#include "flow/inversion.h"
#include "util/rng.h"

namespace netsample {
namespace {

/// Scoped legacy/fast routing (same idiom as test_fastpath.cpp).
struct ScanGuard {
  explicit ScanGuard(bool legacy) { core::force_legacy_scan(legacy); }
  ~ScanGuard() { core::clear_legacy_scan_override(); }
};

class ConformanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ex_ = new exper::Experiment(23, 3.0); }
  static void TearDownTestSuite() {
    delete ex_;
    ex_ = nullptr;
  }
  static exper::Experiment* ex_;
};

exper::Experiment* ConformanceTest::ex_ = nullptr;

// (a) A 1-in-1 sample IS the parent, so every disparity metric must vanish
// identically: expected counts are computed as population * (n_obs/n_pop),
// which is exact (not within-epsilon) when the two histograms coincide.
TEST_F(ConformanceTest, NullSamplingScoresExactlyZeroForCountMethods) {
  const core::Method methods[] = {core::Method::kSystematicCount,
                                  core::Method::kStratifiedCount,
                                  core::Method::kSimpleRandom};
  for (const bool legacy : {false, true}) {
    ScanGuard guard(legacy);
    for (const auto target :
         {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
      for (const auto method : methods) {
        exper::CellConfig cfg;
        cfg.method = method;
        cfg.target = target;
        cfg.granularity = 1;  // select everything
        cfg.interval = ex_->interval(60.0);
        cfg.mean_interarrival_usec = ex_->mean_interarrival_usec();
        // Systematic 1-in-1 has a single valid offset; the random methods
        // get a few seeds to show the property is seed-independent.
        cfg.replications =
            method == core::Method::kSystematicCount ? 1 : 3;
        cfg.base_seed = 77;
        cfg.cache = &ex_->binned_cache();
        const auto cell = exper::run_cell(cfg);
        for (const auto& m : cell.replications) {
          EXPECT_EQ(m.phi, 0.0)
              << core::method_name(method) << "/" << core::target_name(target)
              << (legacy ? " legacy" : " fast");
          EXPECT_EQ(m.chi2, 0.0);
          EXPECT_EQ(m.cost, 0.0);
          EXPECT_EQ(m.significance, 1.0);
          EXPECT_EQ(m.sample_n, m.population_n);
        }
      }
    }
  }
}

// (a, timer methods) A timer sampler can never emit the identity sample —
// its first deadline is strictly after the interval start, so packet 0 is
// unreachable at any period. The null-sampling property for the timer path
// is therefore pinned at the scoring layer, which is method-blind: the
// index set "everything" (what a timer would yield if every deadline hit a
// fresh packet, including the first) must score exactly 0.
TEST_F(ConformanceTest, NullIndexSetScoresExactlyZeroAtTheScoringLayer) {
  const auto& cache = ex_->binned_cache();
  const auto view = ex_->interval(60.0);
  const std::size_t begin = cache.offset_of(view);
  std::vector<std::size_t> all(view.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  for (const auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    const auto sample = cache.sample_histogram(target, all, begin);
    const auto pop =
        cache.population_histogram(target, begin, begin + view.size());
    const auto m = core::score_sample(sample, pop, 1.0);
    EXPECT_EQ(m.phi, 0.0) << core::target_name(target);
    EXPECT_EQ(m.chi2, 0.0);
    EXPECT_EQ(m.cost, 0.0);
    EXPECT_EQ(m.rcost, 0.0);
  }
}

// (b) Systematic count sampling is the paper's baseline "good" method: its
// samples of the (randomly generated, burst-structured) synthetic trace
// must be accepted by the chi-squared test at the 0.1% level in every
// replication — the statistic stays below the 99.9% quantile of
// chi-squared with the target's degrees of freedom.
TEST_F(ConformanceTest, SystematicSamplesPassChiSquaredAtTheMille) {
  for (const auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    for (const std::uint64_t k : {2ULL, 16ULL, 256ULL}) {
      exper::CellConfig cfg;
      cfg.method = core::Method::kSystematicCount;
      cfg.target = target;
      cfg.granularity = k;
      cfg.interval = ex_->interval(120.0);
      cfg.mean_interarrival_usec = ex_->mean_interarrival_usec();
      cfg.replications = static_cast<int>(std::min<std::uint64_t>(k, 16));
      cfg.base_seed = 23;
      cfg.cache = &ex_->binned_cache();
      const auto cell = exper::run_cell(cfg);
      for (std::size_t r = 0; r < cell.replications.size(); ++r) {
        const auto& m = cell.replications[r];
        EXPECT_GT(m.significance, 0.001)
            << core::target_name(target) << " k=" << k << " rep " << r
            << " chi2=" << m.chi2;
      }
    }
  }
}

// (c) Stratified 1-in-k selects one packet from every complete bucket of k
// and one from the final partial bucket of r = n mod k packets with
// probability r/k, so E[sample size] = n/k exactly. The mean over 64
// seeded replications must land within 3 sigma of that expectation, where
// sigma is the EXACT standard deviation of the mean (only the partial
// bucket is random: sqrt(p(1-p)/reps)). No tuned tolerance anywhere.
TEST_F(ConformanceTest, StratifiedSampleSizesAreUnbiased) {
  const auto& cache = ex_->binned_cache();
  const std::uint64_t k = 64;
  std::size_t n = cache.size();
  ASSERT_GT(n, k * 4);
  while (n % k == 0) --n;  // guarantee a partial final bucket

  const double p = static_cast<double>(n % k) / static_cast<double>(k);
  const double expected = static_cast<double>(n) / static_cast<double>(k);
  constexpr int kReps = 64;
  const std::uint64_t whole_buckets = n / k;

  double sum = 0;
  for (int r = 0; r < kReps; ++r) {
    core::SamplerSpec spec;
    spec.method = core::Method::kStratifiedCount;
    spec.granularity = k;
    spec.seed = 1000 + static_cast<std::uint64_t>(r);
    const auto indices = core::select_indices(spec, cache, 0, n);
    // Size is q or q+1, never anything else.
    ASSERT_GE(indices.size(), whole_buckets);
    ASSERT_LE(indices.size(), whole_buckets + 1);
    sum += static_cast<double>(indices.size());
  }
  const double mean = sum / kReps;
  const double sigma_of_mean = std::sqrt(p * (1.0 - p) / kReps);
  EXPECT_NEAR(mean, expected, 3.0 * sigma_of_mean)
      << "n=" << n << " k=" << k << " p=" << p;
}

// (c) Simple random sampling draws EXACTLY n = max(1, round(N/k)) packets
// — Algorithm S guarantees the count, randomizing only the positions.
TEST_F(ConformanceTest, SimpleRandomSampleSizeIsExact) {
  const auto& cache = ex_->binned_cache();
  const std::size_t n = cache.size();
  for (const std::uint64_t k : {4ULL, 64ULL, 1000ULL}) {
    core::SamplerSpec spec;
    spec.method = core::Method::kSimpleRandom;
    spec.granularity = k;
    spec.population = n;
    const std::uint64_t want = core::spec_simple_random_n(spec);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      spec.seed = seed;
      EXPECT_EQ(core::select_indices(spec, cache, 0, n).size(), want)
          << "k=" << k << " seed=" << seed;
    }
  }
}

// ---- Flow-size inversion conformance ----
//
// Direct simulation of the inversion problem, no traces: draw M flow sizes
// from a known mix, thin every packet independently with probability p
// (the exact generative model both estimators assume), and require the
// estimators to recover what they claim to recover. Tolerances are derived
// from the simulation itself, not tuned:
//
//   * The observed flow count C is a sum of independent Bernoulli(q_s)
//     with q_s = 1 - (1-p)^s, so sd(C) = sqrt(sum q_s (1-q_s)). The EM
//     total-flow estimate N-hat is proportional to C to first order, so
//     its relative 4-sigma band is 4*sd(C)/E[C], plus a fixed 10%
//     modeling allowance for the geometric support grid (~1.3x spacing
//     quantizes sizes by up to ~15% at the top of a bin).
//   * Everything is seeded: a failure is a regression, never flake.

/// One simulated thinning experiment over a drawn flow-size population.
struct ThinSim {
  flow::SizeDist truth;    // all M flows
  flow::SizeDist sampled;  // flows with >= 1 sampled packet, by observed size
  double q_sum{0};         // E[C] = sum of per-flow detection probabilities
  double q_var{0};         // Var(C) = sum q_s (1 - q_s)
};

enum class Mix { kPareto, kGeometric };

ThinSim simulate_thinning(Mix mix, std::size_t flows, double p,
                          std::uint64_t seed) {
  Rng rng(seed);
  ThinSim sim;
  for (std::size_t i = 0; i < flows; ++i) {
    std::uint64_t s;
    if (mix == Mix::kPareto) {
      // xm = 0.5/p keeps detection probability >= 1 - e^{-0.5} even at the
      // smallest sizes; alpha = 1.3 is the heavy-tail regime the inversion
      // literature targets. Capped so a single extreme draw cannot blow up
      // the per-packet thinning loop.
      s = static_cast<std::uint64_t>(rng.pareto(0.5 / p, 1.3));
      s = std::min<std::uint64_t>(s, 2'000'000);
    } else {
      // Geometric with mean ~ 2/p: mostly small flows, thin tail.
      s = 1 + rng.geometric(p / (2.0 - p));
    }
    sim.truth.add(s);
    const double q = 1.0 - std::pow(1.0 - p, static_cast<double>(s));
    sim.q_sum += q;
    sim.q_var += q * (1.0 - q);
    std::uint64_t j = 0;
    for (std::uint64_t t = 0; t < s; ++t) j += rng.bernoulli(p) ? 1 : 0;
    if (j > 0) sim.sampled.add(j);
  }
  return sim;
}

const double kThinProbs[] = {1.0 / 10, 1.0 / 100, 1.0 / 1000};

// EM recovers the total flow count (seen + unseen) within its sampling
// 4-sigma band plus the grid allowance, for both mixes, down to p = 1/1000.
TEST(InversionConformance, EmRecoversTotalFlows) {
  for (const Mix mix : {Mix::kPareto, Mix::kGeometric}) {
    for (const double p : kThinProbs) {
      const std::size_t kFlows = 4000;
      const auto sim = simulate_thinning(mix, kFlows, p, 91);
      const auto r = flow::invert_em(sim.sampled, p);
      // Three error sources, each bounded separately:
      //   * sampling noise in the observed count C (4-sigma band);
      //   * support-grid quantization (~1.3x spacing), fixed 10%;
      //   * unseen-mass extrapolation: the count of barely-detectable
      //     flows is ill-conditioned (their Fisher information vanishes
      //     as q_s -> 0), so this term scales with the fraction of flows
      //     EM never saw and must extrapolate.
      const double unseen_frac = 1.0 - sim.q_sum / static_cast<double>(kFlows);
      const double rel_tol = 4.0 * std::sqrt(sim.q_var) / sim.q_sum + 0.10 +
                             0.25 * unseen_frac;
      const double rel_err =
          std::fabs(r.total_flows - static_cast<double>(kFlows)) / kFlows;
      EXPECT_LE(rel_err, rel_tol)
          << (mix == Mix::kPareto ? "pareto" : "geometric") << " p=" << p
          << " N-hat=" << r.total_flows;
      // Total packets: sum of j/p is unbiased for the true packet total,
      // and EM preserves observed packet mass up to grid quantization.
      const double pkt_err =
          std::fabs(r.estimated.total_packets() - sim.truth.total_packets()) /
          sim.truth.total_packets();
      EXPECT_LE(pkt_err, 0.20)
          << (mix == Mix::kPareto ? "pareto" : "geometric") << " p=" << p;
    }
  }
}

// The EM ascent property, asserted exactly (up to accumulated rounding):
// the zero-truncated observed-data log-likelihood never decreases.
TEST(InversionConformance, EmLogLikelihoodIsMonotone) {
  for (const Mix mix : {Mix::kPareto, Mix::kGeometric}) {
    for (const double p : kThinProbs) {
      const auto sim = simulate_thinning(mix, 2000, p, 17);
      const auto r = flow::invert_em(sim.sampled, p);
      ASSERT_FALSE(r.log_likelihood.empty());
      for (std::size_t i = 1; i < r.log_likelihood.size(); ++i) {
        const double prev = r.log_likelihood[i - 1];
        const double cur = r.log_likelihood[i];
        EXPECT_GE(cur, prev - 1e-7 * (std::fabs(prev) + 1.0))
            << "iteration " << i << " p=" << p;
      }
    }
  }
}

// Tail rescaling conforms to its exact sampling theory. The estimated tail
// count at threshold T = 5k is #{flows with observed j >= 5}, whose
// distribution under binomial thinning is known in closed form from the
// drawn truth: E = sum_s n_s P(Bin(s,p) >= 5), Var = sum_s n_s P (1-P).
// The implementation must land within 4 sigma of that prediction — this
// pins the code to the math WITHOUT hiding the estimator's inherent
// boundary blur (flows just below T inflate the estimate when the size
// density decays quickly; that bias is part of the prediction, not noise).
// A looser accuracy check then bounds the blur itself on the heavy-tailed
// mix the rescaler is designed for.
TEST(InversionConformance, TailRescaleMatchesSamplingTheory) {
  const auto log_binom_tail_lt5 = [](std::uint64_t s, double p) {
    // P(Bin(s,p) <= 4), summed in ordinary space (terms are tiny or O(1)).
    double total = 0.0;
    const double lq = std::log1p(-p);
    double lcoef = 0.0;  // log C(s, j)
    for (std::uint64_t j = 0; j <= 4 && j <= s; ++j) {
      if (j > 0) {
        lcoef += std::log(static_cast<double>(s - j + 1)) -
                 std::log(static_cast<double>(j));
      }
      total += std::exp(lcoef + static_cast<double>(j) * std::log(p) +
                        static_cast<double>(s - j) * lq);
    }
    return std::min(total, 1.0);
  };
  for (const Mix mix : {Mix::kPareto, Mix::kGeometric}) {
    for (const double p : kThinProbs) {
      const auto k = static_cast<std::uint64_t>(std::llround(1.0 / p));
      const auto sim = simulate_thinning(mix, 4000, p, 53);
      const auto est = flow::invert_tail_rescale(sim.sampled, k);
      const std::uint64_t threshold = 5 * k;
      double expect = 0.0;
      double var = 0.0;
      for (std::uint64_t s = 1; s <= sim.truth.max_size(); ++s) {
        const double n = sim.truth.count(s);
        if (n == 0.0) continue;
        const double tail_p = 1.0 - log_binom_tail_lt5(s, p);
        expect += n * tail_p;
        var += n * tail_p * (1.0 - tail_p);
      }
      const double got = est.tail_flows(threshold);
      EXPECT_LE(std::fabs(got - expect), 4.0 * std::sqrt(var) + 1.0)
          << (mix == Mix::kPareto ? "pareto" : "geometric") << " p=" << p
          << " got=" << got << " expect=" << expect;

      // On the heavy-tailed mix (the rescaler's design domain) the blur
      // stays bounded: the estimate is within a factor of two of truth.
      if (mix == Mix::kPareto) {
        const double want = sim.truth.tail_flows(threshold);
        ASSERT_GT(want, 50.0) << "tail too thin to test at p=" << p;
        EXPECT_GT(got, 0.5 * want) << "p=" << p;
        EXPECT_LT(got, 2.0 * want) << "p=" << p;
      }
    }
  }
}

// Degenerate and validation paths of the inversion API.
TEST(InversionConformance, EdgeCases) {
  flow::SizeDist empty;
  EXPECT_EQ(flow::invert_em(empty, 0.5).total_flows, 0.0);
  EXPECT_TRUE(flow::invert_tail_rescale(empty, 10).empty());
  EXPECT_THROW(flow::invert_em(empty, 0.0), std::invalid_argument);
  EXPECT_THROW(flow::invert_em(empty, 1.5), std::invalid_argument);
  EXPECT_THROW(flow::invert_tail_rescale(empty, 0), std::invalid_argument);

  // p = 1 is the identity: nothing is thinned, nothing is unseen.
  flow::SizeDist d;
  d.add(3, 2.0);
  d.add(7, 1.0);
  const auto r = flow::invert_em(d, 1.0);
  EXPECT_EQ(r.total_flows, 3.0);
  EXPECT_EQ(r.estimated.count(3), 2.0);
  EXPECT_EQ(r.estimated.count(7), 1.0);
}

}  // namespace
}  // namespace netsample
