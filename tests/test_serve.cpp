// The serving layer (src/serve/) and the facade's session vocabulary
// (netsample/session.h): spec codec and validation, the wire protocol
// parsers, and the Server itself driven in-process over socketpairs —
// session rows byte-identical to a direct engine run, admission and
// shedding budgets enforced per tenant, survivors never perturbed, and a
// stop request draining every open session.
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "netsample/netsample.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/serve.h"
#include "shard/transport.h"

namespace netsample::serve {
namespace {

// ---- fixtures ------------------------------------------------------------

/// A deterministic synthetic packet sequence: strictly increasing
/// timestamps, sizes cycling over the valid range.
std::vector<trace::PacketRecord> make_packets(std::size_t n) {
  std::vector<trace::PacketRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace::PacketRecord p;
    p.timestamp = MicroTime{(i + 1) * 1000};
    p.size = static_cast<std::uint16_t>(28 + (i * 37) % 1400);
    p.protocol = 6;
    out.push_back(p);
  }
  return out;
}

/// The ROWS payloads a session with this spec MUST produce for `packets`:
/// a direct engine run through the same facade helpers `watch` uses.
std::vector<std::string> reference_rows(
    const SessionSpec& spec, std::span<const trace::PacketRecord> packets) {
  stream::Engine engine(session_lanes(spec), session_engine_options(spec));
  std::vector<std::string> rows;
  const auto emit = [&rows](const stream::WindowScore& w) {
    for (const auto& cells : session_row_cells(w)) {
      rows.push_back(json_line(session_row_columns(), cells));
    }
  };
  engine.on_snapshot(emit);
  engine.feed(packets);
  emit(engine.finish());
  return rows;
}

/// One in-process client: the far end of a socketpair whose near end the
/// server adopted. read_line() blocks, so expectations stay ordered.
struct TestClient {
  std::unique_ptr<shard::Transport> transport;

  void send(const std::string& line) {
    ASSERT_TRUE(transport->write_line(line));
  }

  /// Lines read past while waiting for a specific reply (session output
  /// from drain lanes is not ordered against protocol-thread replies);
  /// drain_all() consumes these before touching the transport again.
  std::vector<std::string> stashed;

  /// Blocking read straight off the transport, failing the test on EOF.
  /// Never consults the stash — wait_stats() both reads here and appends
  /// there, and going through the stash would recycle its own leftovers.
  std::string read_transport_line() {
    std::string line;
    for (;;) {
      switch (transport->read_line(&line)) {
        case shard::ReadResult::kLine: return line;
        case shard::ReadResult::kInterrupted: continue;
        default:
          ADD_FAILURE() << "transport closed while expecting a line";
          return {};
      }
    }
  }

  /// Next line: stashed leftovers first, then the transport.
  std::string next_line() {
    if (!stashed.empty()) {
      std::string line = std::move(stashed.front());
      stashed.erase(stashed.begin());
      return line;
    }
    return read_transport_line();
  }

  /// Read until the STATS reply, stashing any session lines that beat it
  /// onto the wire. Because the protocol loop handles lines in order, the
  /// reply doubles as a barrier: every earlier command has been consumed.
  std::string wait_stats() {
    for (;;) {
      std::string line = read_transport_line();
      if (line.empty() || line.rfind("STATS ", 0) == 0) return line;
      stashed.push_back(std::move(line));
    }
  }

  struct SessionEnd {
    std::string verdict;  // "CLOSED" / "SHED" / "REJECT"
    std::string detail;   // text after "<verdict> <id> "
    std::vector<std::string> rows;
  };

  /// Read until every listed session hit its terminal line (CLOSED/SHED/
  /// REJECT), accumulating ROWS for ALL of them as they interleave. Session
  /// output from different drain lanes arrives in arbitrary order, so a
  /// single pass over the shared transport is the only correct way to
  /// collect more than one session.
  std::map<std::string, SessionEnd> drain_all(
      const std::vector<std::string>& ids) {
    std::map<std::string, SessionEnd> ends;
    std::size_t remaining = ids.size();
    while (remaining > 0) {
      const std::string line = next_line();
      if (line.empty()) break;  // transport died; failure already added
      const std::size_t sp1 = line.find(' ');
      if (sp1 == std::string::npos) continue;
      const std::string verb = line.substr(0, sp1);
      const std::size_t sp2 = line.find(' ', sp1 + 1);
      const std::string line_id = line.substr(
          sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                            : sp2 - sp1 - 1);
      const std::string rest =
          sp2 == std::string::npos ? std::string() : line.substr(sp2 + 1);
      if (verb == "ROWS") {
        ends[line_id].rows.push_back(rest);
      } else if (verb == "CLOSED" || verb == "SHED" || verb == "REJECT") {
        SessionEnd& end = ends[line_id];
        end.verdict = verb;
        end.detail = rest;
        --remaining;
      }
    }
    return ends;
  }

  /// Single-session convenience — sound only while `id` is the one session
  /// with output in flight.
  SessionEnd drain_session(const std::string& id) {
    return drain_all({id})[id];
  }
};

/// Server + run() thread over adopted socketpairs (no listener: run()
/// returns once the last client hangs up).
struct ServerHarness {
  Server server;
  std::thread runner;

  explicit ServerHarness(ServeOptions options) : server(std::move(options)) {}

  /// Adopt one client; call for every client BEFORE run_async().
  TestClient connect() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    server.adopt_client(shard::make_fd_transport(fds[0], fds[0]));
    return TestClient{shard::make_fd_transport(fds[1], fds[1])};
  }

  void run_async() {
    runner = std::thread([this] { server.run(); });
  }

  ~ServerHarness() {
    if (runner.joinable()) runner.join();
  }
};

SessionSpec small_spec() {
  SessionSpec spec;
  spec.method = core::Method::kSimpleRandom;  // seed-sensitive on purpose
  spec.granularity = 10;
  spec.replications = 2;
  spec.seed = 7;
  spec.population = 400;
  spec.window_s = 0.1;
  spec.stride_s = 0.1;
  return spec;
}

// ---- SessionSpec codec ---------------------------------------------------

TEST(SessionCodec, RoundTripsEveryField) {
  SessionSpec spec;
  spec.method = core::Method::kStratifiedTimer;
  spec.granularity = 1234;
  spec.replications = 9;
  spec.seed = 0xDEADBEEFCAFEull;
  spec.targets = "iat";
  spec.window_s = 2.5;
  spec.stride_s = 0.125;
  spec.population = 81792;
  spec.mean_iat_usec = 36.71875;
  spec.chunk_packets = 97;
  spec.ring_capacity = 3;
  spec.deadline_s = 30.0;
  spec.tenant = "team-a.prod_1";

  SessionSpec decoded;
  ASSERT_TRUE(decode_session_spec(encode_session_spec(spec), &decoded));
  EXPECT_EQ(decoded, spec);
}

TEST(SessionCodec, RoundTripsDefaults) {
  const SessionSpec spec;
  SessionSpec decoded;
  ASSERT_TRUE(decode_session_spec(encode_session_spec(spec), &decoded));
  EXPECT_EQ(decoded, spec);
}

TEST(SessionCodec, RejectsMalformedEncodings) {
  const std::string good = encode_session_spec(SessionSpec{});
  SessionSpec out;
  EXPECT_TRUE(decode_session_spec(good, &out));

  EXPECT_FALSE(decode_session_spec("", &out));
  EXPECT_FALSE(decode_session_spec("v=2" + good.substr(3), &out));  // version
  EXPECT_FALSE(decode_session_spec(good + ",bogus=1", &out));   // unknown key
  EXPECT_FALSE(decode_session_spec(good + ",m=random", &out));  // duplicate
  EXPECT_FALSE(decode_session_spec(good.substr(0, good.rfind(',')), &out));
  EXPECT_FALSE(decode_session_spec("k=10", &out));  // missing everything else

  std::string bad_num = good;
  bad_num.replace(bad_num.find("k=50"), 4, "k=5x");
  EXPECT_FALSE(decode_session_spec(bad_num, &out));
}

// ---- validation ----------------------------------------------------------

TEST(SessionValidate, AcceptsDefaultsAndWatchLikeSpecs) {
  EXPECT_TRUE(validate_session_spec(SessionSpec{}).is_ok());
  EXPECT_TRUE(validate_session_spec(small_spec()).is_ok());
}

TEST(SessionValidate, RejectsInconsistentSpecs) {
  using core::Method;
  const auto expect_bad = [](SessionSpec spec, const char* why) {
    const Status status = validate_session_spec(spec);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << why;
  };

  SessionSpec spec;
  spec.granularity = 0;
  expect_bad(spec, "zero granularity");

  spec = SessionSpec{};
  spec.method = Method::kSimpleRandom;  // population stays 0
  expect_bad(spec, "random sampling needs a population");

  spec = SessionSpec{};
  spec.method = Method::kSystematicTimer;  // mean_iat stays 0
  expect_bad(spec, "timer methods need the mean interarrival");

  spec = SessionSpec{};
  spec.targets = "ports";
  expect_bad(spec, "targets must be both|size|iat");

  spec = SessionSpec{};
  spec.replications = 33;  // 2 targets x 33 reps = 66 > kMaxLanes
  expect_bad(spec, "lane count beyond Engine::kMaxLanes");

  spec = SessionSpec{};
  spec.ring_capacity = 0;
  expect_bad(spec, "zero ring capacity");

  spec = SessionSpec{};
  spec.window_s = -1;
  expect_bad(spec, "negative window");

  spec = SessionSpec{};
  spec.tenant = "no spaces allowed";
  expect_bad(spec, "tenant breaks the wire encoding");

  spec = SessionSpec{};
  spec.tenant = "";
  expect_bad(spec, "empty tenant");
}

// ---- protocol parsers ----------------------------------------------------

TEST(ServeProtocol, ParsesEveryVerb) {
  ClientMessage msg;
  std::string error;

  ASSERT_TRUE(parse_client_line("OPEN s1 v=1,m=systematic", &msg, &error));
  EXPECT_EQ(msg.command, ClientCommand::kOpen);
  EXPECT_EQ(msg.session_id, "s1");
  EXPECT_EQ(msg.payload, "v=1,m=systematic");

  ASSERT_TRUE(parse_client_line("FEED s1 10:100 20:200", &msg, &error));
  EXPECT_EQ(msg.command, ClientCommand::kFeed);
  EXPECT_EQ(msg.payload, "10:100 20:200");

  ASSERT_TRUE(parse_client_line("CLOSE s1", &msg, &error));
  EXPECT_EQ(msg.command, ClientCommand::kClose);

  ASSERT_TRUE(parse_client_line("STATS", &msg, &error));
  EXPECT_EQ(msg.command, ClientCommand::kStats);

  ASSERT_TRUE(parse_client_line("BYE", &msg, &error));
  EXPECT_EQ(msg.command, ClientCommand::kBye);
}

TEST(ServeProtocol, RejectsMalformedLines) {
  ClientMessage msg;
  std::string error;
  EXPECT_FALSE(parse_client_line("", &msg, &error));
  EXPECT_FALSE(parse_client_line("NOPE s1", &msg, &error));
  EXPECT_FALSE(parse_client_line("OPEN", &msg, &error));          // no id
  EXPECT_FALSE(parse_client_line("OPEN ba!d x=1", &msg, &error));
  EXPECT_FALSE(parse_client_line("STATS s1", &msg, &error));      // operand
  EXPECT_FALSE(parse_client_line("CLOSE", &msg, &error));
  EXPECT_FALSE(
      parse_client_line("OPEN " + std::string(kMaxSessionIdLen + 1, 'a') +
                            " v=1",
                        &msg, &error));
}

TEST(ServeProtocol, FeedPayloadRoundTripsAndClamps) {
  const auto packets = make_packets(5);
  const std::string payload =
      encode_feed_payload(std::span<const trace::PacketRecord>(packets));

  MicroTime last{};
  FeedChunk chunk;
  ASSERT_TRUE(parse_feed_payload(payload, &last, &chunk));
  ASSERT_EQ(chunk.packets.size(), packets.size());
  EXPECT_EQ(chunk.clamped, 0u);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(chunk.packets[i].timestamp.usec, packets[i].timestamp.usec);
    EXPECT_EQ(chunk.packets[i].size, packets[i].size);
  }

  // A timestamp running backwards is clamped to the running max — the
  // PcapSource salvage rule, so serve and watch see identical sequences.
  MicroTime last2{};
  FeedChunk chunk2;
  ASSERT_TRUE(parse_feed_payload("5000:100 1000:200 6000:300", &last2,
                                 &chunk2));
  EXPECT_EQ(chunk2.packets[1].timestamp.usec, 5000u);
  EXPECT_EQ(chunk2.clamped, 1u);

  FeedChunk bad;
  MicroTime t{};
  EXPECT_FALSE(parse_feed_payload("", &t, &bad));
  EXPECT_FALSE(parse_feed_payload("1000", &t, &bad));
  EXPECT_FALSE(parse_feed_payload("1000:0", &t, &bad));      // size 0
  EXPECT_FALSE(parse_feed_payload("1000:70000", &t, &bad));  // size > u16
  EXPECT_FALSE(parse_feed_payload("1000:12x", &t, &bad));
}

// ---- the daemon, in-process ---------------------------------------------

TEST(ServeDaemon, SessionRowsMatchDirectEngineByteForByte) {
  const auto packets = make_packets(600);
  const SessionSpec spec = small_spec();
  const auto expected = reference_rows(
      spec, std::span<const trace::PacketRecord>(packets));
  ASSERT_FALSE(expected.empty());

  ServerHarness harness{ServeOptions{}};
  TestClient client = harness.connect();
  harness.run_async();

  client.send("OPEN s1 " + encode_session_spec(spec));
  EXPECT_EQ(client.next_line(), "OPENED s1");
  // Deliberately awkward chunking: 97 packets per FEED. The engine contract
  // makes chunking invisible, so the rows must still match exactly.
  for (std::size_t at = 0; at < packets.size(); at += 97) {
    const std::size_t len = std::min<std::size_t>(97, packets.size() - at);
    client.send("FEED s1 " +
                encode_feed_payload(std::span<const trace::PacketRecord>(
                    packets.data() + at, len)));
  }
  client.send("CLOSE s1");
  const auto end = client.drain_session("s1");
  EXPECT_EQ(end.verdict, "CLOSED");
  EXPECT_EQ(end.detail, "rows=" + std::to_string(expected.size()) +
                            " packets=" + std::to_string(packets.size()));
  EXPECT_EQ(end.rows, expected);
  client.transport->close();
}

TEST(ServeDaemon, ConcurrentSessionsWithDistinctSeedsStayIsolated) {
  const auto packets = make_packets(500);
  const std::span<const trace::PacketRecord> all(packets);

  constexpr int kSessions = 6;
  std::vector<SessionSpec> specs;
  for (int i = 0; i < kSessions; ++i) {
    SessionSpec spec = small_spec();
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    specs.push_back(spec);
  }

  ServerHarness harness{ServeOptions{}};
  TestClient client = harness.connect();
  harness.run_async();

  // All OPENs first — the sessions really are concurrent — then FEEDs
  // round-robin interleaved so their chunks contend in the lane pool.
  for (int i = 0; i < kSessions; ++i) {
    client.send("OPEN s" + std::to_string(i) + " " +
                encode_session_spec(specs[i]));
  }
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(client.next_line(), "OPENED s" + std::to_string(i));
  }
  for (std::size_t at = 0; at < packets.size(); at += 125) {
    const std::size_t len = std::min<std::size_t>(125, packets.size() - at);
    const std::string payload = encode_feed_payload(
        std::span<const trace::PacketRecord>(packets.data() + at, len));
    for (int i = 0; i < kSessions; ++i) {
      client.send("FEED s" + std::to_string(i) + " " + payload);
    }
  }
  std::vector<std::string> ids;
  for (int i = 0; i < kSessions; ++i) {
    ids.push_back("s" + std::to_string(i));
    client.send("CLOSE " + ids.back());
  }
  // However the daemon interleaved the lanes, every session must equal the
  // sequential single-engine run of its own seed — zero cross-talk.
  auto ends = client.drain_all(ids);
  for (int i = 0; i < kSessions; ++i) {
    const auto& end = ends[ids[i]];
    EXPECT_EQ(end.verdict, "CLOSED") << "session " << i;
    EXPECT_EQ(end.rows, reference_rows(specs[i], all)) << "session " << i;
  }
  client.transport->close();
}

TEST(ServeDaemon, AdmissionBudgetRejectsAndCountsWithoutHurtingSurvivor) {
  obs::set_enabled(true);
  obs::Counter& rejected = obs::registry().counter(
      "netsample_serve_sessions_rejected_total",
      obs::Determinism::kDeterministic);
  obs::Counter& opened = obs::registry().counter(
      "netsample_serve_sessions_opened_total",
      obs::Determinism::kDeterministic);
  const std::uint64_t rejected_before = rejected.value();
  const std::uint64_t opened_before = opened.value();

  const auto packets = make_packets(300);
  const SessionSpec spec = small_spec();

  ServeOptions options;
  options.default_budget.max_sessions = 1;
  ServerHarness harness{std::move(options)};
  TestClient client = harness.connect();
  harness.run_async();

  client.send("OPEN keeper " + encode_session_spec(spec));
  EXPECT_EQ(client.next_line(), "OPENED keeper");
  client.send("OPEN excess " + encode_session_spec(spec));
  EXPECT_EQ(client.next_line(), "REJECT excess sessions-budget");
  // A duplicate id is a REJECT too, and must not disturb the live session.
  client.send("OPEN keeper " + encode_session_spec(spec));
  EXPECT_EQ(client.next_line(), "REJECT keeper duplicate-id");

  client.send("FEED keeper " + encode_feed_payload(
                                   std::span<const trace::PacketRecord>(
                                       packets)));
  client.send("CLOSE keeper");
  const auto end = client.drain_session("keeper");
  EXPECT_EQ(end.verdict, "CLOSED");
  EXPECT_EQ(end.rows,
            reference_rows(spec,
                           std::span<const trace::PacketRecord>(packets)));
  client.transport->close();
  harness.runner.join();

  EXPECT_EQ(opened.value() - opened_before, 1u);
  EXPECT_EQ(rejected.value() - rejected_before, 2u);
}

TEST(ServeDaemon, OverloadedTenantIsShedAndSurvivorRowsDoNotChange) {
  obs::set_enabled(true);
  obs::Counter& shed = obs::registry().counter(
      "netsample_serve_sessions_shed_total",
      obs::Determinism::kNondeterministic);
  const std::uint64_t shed_before = shed.value();

  const auto packets = make_packets(400);
  const std::span<const trace::PacketRecord> all(packets);

  SessionSpec bulk = small_spec();
  bulk.tenant = "bulk";
  const SessionSpec fine = small_spec();  // default tenant, unlimited

  ServeOptions options;
  // One FEED of 400 records (~12 KB) overflows bulk's queued-bytes budget
  // deterministically; the default tenant keeps no budget at all.
  options.tenant_budgets["bulk"] = TenantBudget{0, 1024, 0};
  ServerHarness harness{std::move(options)};
  TestClient client = harness.connect();
  harness.run_async();

  client.send("OPEN b " + encode_session_spec(bulk));
  client.send("OPEN f " + encode_session_spec(fine));
  EXPECT_EQ(client.next_line(), "OPENED b");
  EXPECT_EQ(client.next_line(), "OPENED f");

  client.send("FEED b " + encode_feed_payload(all));
  client.send("FEED f " + encode_feed_payload(all));
  client.send("CLOSE f");
  auto ends = client.drain_all({"b", "f"});
  EXPECT_EQ(ends["b"].verdict, "SHED");
  EXPECT_EQ(ends["b"].detail, "ring-bytes");
  EXPECT_EQ(ends["f"].verdict, "CLOSED");
  EXPECT_EQ(ends["f"].rows, reference_rows(fine, all));

  // Late traffic for the shed session is dropped silently, not an error,
  // and must not wedge the daemon: the next line after it is the STATS
  // reply, with no ERROR in between.
  client.send("FEED b " + encode_feed_payload(all));
  client.send("STATS");
  const std::string stats = client.wait_stats();
  EXPECT_EQ(stats.rfind("STATS active=", 0), 0u) << stats;
  client.transport->close();
  harness.runner.join();

  EXPECT_GE(shed.value() - shed_before, 1u);
}

TEST(ServeDaemon, PacketRateBudgetShedsTheFloodingSession) {
  const auto packets = make_packets(200);
  SessionSpec spec = small_spec();
  spec.tenant = "metered";

  ServeOptions options;
  // Bucket primes to a full 1 s burst (50 packets); a 200-packet FEED
  // overruns it on the spot — no timing dependence in the test.
  options.tenant_budgets["metered"] = TenantBudget{0, 0, 50};
  ServerHarness harness{std::move(options)};
  TestClient client = harness.connect();
  harness.run_async();

  client.send("OPEN flood " + encode_session_spec(spec));
  EXPECT_EQ(client.next_line(), "OPENED flood");
  client.send("FEED flood " +
              encode_feed_payload(std::span<const trace::PacketRecord>(
                  packets)));
  const auto end = client.drain_session("flood");
  EXPECT_EQ(end.verdict, "SHED");
  EXPECT_EQ(end.detail, "pps-budget");
  client.transport->close();
}

TEST(ServeDaemon, GarbageInputShedsThatSessionOnly) {
  const auto packets = make_packets(300);
  const SessionSpec spec = small_spec();

  ServerHarness harness{ServeOptions{}};
  TestClient client = harness.connect();
  harness.run_async();

  client.send("OPEN bad " + encode_session_spec(spec));
  client.send("OPEN good " + encode_session_spec(spec));
  EXPECT_EQ(client.next_line(), "OPENED bad");
  EXPECT_EQ(client.next_line(), "OPENED good");

  client.send("FEED bad 1000:not-a-size");
  client.send("FEED good " +
              encode_feed_payload(std::span<const trace::PacketRecord>(
                  packets)));
  client.send("CLOSE good");
  auto ends = client.drain_all({"bad", "good"});
  EXPECT_EQ(ends["bad"].verdict, "SHED");
  EXPECT_EQ(ends["bad"].detail, "input-error");
  EXPECT_EQ(ends["good"].verdict, "CLOSED");
  EXPECT_EQ(ends["good"].rows,
            reference_rows(spec,
                           std::span<const trace::PacketRecord>(packets)));
  client.transport->close();
}

TEST(ServeDaemon, ProtocolErrorsAreReportedNotFatal) {
  ServerHarness harness{ServeOptions{}};
  TestClient client = harness.connect();
  harness.run_async();

  client.send("FEED ghost 1000:100");
  EXPECT_EQ(client.next_line(), "ERROR FEED unknown session ghost");
  client.send("FROBNICATE x");
  const std::string err = client.next_line();
  EXPECT_EQ(err.rfind("ERROR ", 0), 0u) << err;
  client.send("OPEN s1 this-is-not-a-spec");
  EXPECT_EQ(client.next_line(), "REJECT s1 bad-spec");
  client.send("STATS");
  const std::string stats = client.next_line();
  EXPECT_EQ(stats.rfind("STATS active=", 0), 0u) << stats;
  client.transport->close();
}

TEST(ServeDaemon, StopRequestDrainsOpenSessionsToClosed) {
  const auto packets = make_packets(250);
  const SessionSpec spec = small_spec();

  ServerHarness harness{ServeOptions{}};
  TestClient client = harness.connect();
  harness.run_async();

  client.send("OPEN s1 " + encode_session_spec(spec));
  EXPECT_EQ(client.next_line(), "OPENED s1");
  client.send("FEED s1 " +
              encode_feed_payload(std::span<const trace::PacketRecord>(
                  packets)));
  // STATS is handled by the same protocol loop, in order: its reply proves
  // the FEED has been consumed, so the stop below can't outrun it.
  client.send("STATS");
  EXPECT_EQ(client.wait_stats().rfind("STATS active=", 0), 0u);
  // No CLOSE: the stop request must finish the session for us — the
  // SIGTERM drain contract.
  harness.server.request_stop();
  const auto end = client.drain_session("s1");
  EXPECT_EQ(end.verdict, "CLOSED");
  EXPECT_EQ(end.rows,
            reference_rows(spec,
                           std::span<const trace::PacketRecord>(packets)));
  client.transport->close();
}

}  // namespace
}  // namespace netsample::serve
