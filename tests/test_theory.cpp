#include "core/theory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/special.h"
#include "util/rng.h"

namespace netsample::core {
namespace {

TEST(ChiSquaredQuantile, InvertsCdf) {
  for (double k : {1.0, 2.0, 4.0, 10.0, 50.0}) {
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
      const double x = stats::chi_squared_quantile(p, k);
      EXPECT_NEAR(stats::chi_squared_cdf(x, k), p, 1e-9)
          << "k=" << k << " p=" << p;
    }
  }
}

TEST(ChiSquaredQuantile, KnownCriticalValues) {
  EXPECT_NEAR(stats::chi_squared_quantile(0.95, 1), 3.841, 0.001);
  EXPECT_NEAR(stats::chi_squared_quantile(0.95, 2), 5.991, 0.001);
  EXPECT_NEAR(stats::chi_squared_quantile(0.95, 4), 9.488, 0.001);
  EXPECT_NEAR(stats::chi_squared_quantile(0.5, 2), 2.0 * std::log(2.0), 1e-6);
}

TEST(ChiSquaredQuantile, DomainErrors) {
  EXPECT_THROW((void)stats::chi_squared_quantile(0.0, 2), std::domain_error);
  EXPECT_THROW((void)stats::chi_squared_quantile(1.0, 2), std::domain_error);
  EXPECT_THROW((void)stats::chi_squared_quantile(0.5, 0.0), std::domain_error);
}

TEST(PhiTheory, ExpectedChi2IsDofs) {
  EXPECT_DOUBLE_EQ(expected_chi2(3), 2.0);
  EXPECT_DOUBLE_EQ(expected_chi2(5), 4.0);
  EXPECT_THROW((void)expected_chi2(1), std::invalid_argument);
}

TEST(PhiTheory, ExpectedPhiScalesAsRootN) {
  const double phi_100 = expected_phi(3, 100);
  const double phi_10000 = expected_phi(3, 10000);
  EXPECT_NEAR(phi_100 / phi_10000, 10.0, 1e-9);
}

TEST(PhiTheory, ClosedFormForTwoBins) {
  // nu = 1: E[sqrt(chi2_1)] = sqrt(2/pi) * ... specifically
  // Gamma(1) / Gamma(1/2) = 1 / sqrt(pi); E[phi] = (1/sqrt(pi)) *
  // sqrt(2)/sqrt(2n)... our formula gives Gamma(1)/Gamma(0.5)/sqrt(n).
  const double expected = 1.0 / std::sqrt(M_PI) / std::sqrt(100.0);
  EXPECT_NEAR(expected_phi(2, 100), expected, 1e-12);
}

TEST(PhiTheory, QuantilesBracketTheMean) {
  const double lo = phi_quantile(3, 1000, 0.05);
  const double mid = phi_quantile(3, 1000, 0.5);
  const double hi = phi_quantile(3, 1000, 0.95);
  const double mean = expected_phi(3, 1000);
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
  EXPECT_GT(mean, lo);
  EXPECT_LT(mean, hi);
}

TEST(PhiTheory, Validation) {
  EXPECT_THROW((void)expected_phi(1, 100), std::invalid_argument);
  EXPECT_THROW((void)expected_phi(3, 0), std::invalid_argument);
  EXPECT_THROW((void)phi_quantile(3, 100, 0.0), std::domain_error);
}

TEST(PhiTheory, MatchesMultinomialSimulation) {
  // Draw multinomial samples from fixed proportions, compute phi the way
  // the library does, and compare the empirical mean and 95th percentile
  // against the closed forms.
  Rng rng(71);
  const std::vector<double> probs = {0.31, 0.34, 0.35};
  const std::uint64_t n = 2000;
  const int reps = 600;
  std::vector<double> phis;
  for (int r = 0; r < reps; ++r) {
    std::vector<double> obs(3, 0.0);
    for (std::uint64_t i = 0; i < n; ++i) {
      double u = rng.uniform01();
      for (std::size_t b = 0; b < probs.size(); ++b) {
        if (u < probs[b] || b + 1 == probs.size()) {
          obs[b] += 1.0;
          break;
        }
        u -= probs[b];
      }
    }
    double chi2 = 0.0, nphi = 0.0;
    for (std::size_t b = 0; b < probs.size(); ++b) {
      const double e = probs[b] * static_cast<double>(n);
      chi2 += (obs[b] - e) * (obs[b] - e) / e;
      nphi += e + obs[b];
    }
    phis.push_back(std::sqrt(chi2 / nphi));
  }
  double mean = 0.0;
  for (double p : phis) mean += p;
  mean /= reps;
  std::sort(phis.begin(), phis.end());
  const double p95 = phis[static_cast<std::size_t>(0.95 * reps)];

  EXPECT_NEAR(mean, expected_phi(3, n), 0.1 * expected_phi(3, n));
  EXPECT_NEAR(p95, phi_quantile(3, n, 0.95), 0.1 * phi_quantile(3, n, 0.95));
}

}  // namespace
}  // namespace netsample::core
