#include "core/adaptive.h"

#include <gtest/gtest.h>

namespace netsample::core {
namespace {

AdaptiveControllerConfig config(std::uint64_t budget = 1000) {
  AdaptiveControllerConfig c;
  c.examined_budget_per_cycle = budget;
  c.headroom = 1.0;
  c.min_granularity = 1;
  c.max_granularity = 1024;
  c.smoothing_alpha = 1.0;  // trust each cycle fully: deterministic tests
  return c;
}

TEST(AdaptiveController, StartsAtMinGranularity) {
  AdaptiveRateController ctl(config());
  EXPECT_EQ(ctl.granularity(), 1u);
}

TEST(AdaptiveController, StaysFineUnderLightLoad) {
  AdaptiveRateController ctl(config(1000));
  EXPECT_EQ(ctl.observe_cycle(500), 1u);
  EXPECT_EQ(ctl.observe_cycle(999), 1u);
}

TEST(AdaptiveController, CoarsensExactlyEnough) {
  AdaptiveRateController ctl(config(1000));
  EXPECT_EQ(ctl.observe_cycle(1001), 2u);    // 1001/2 < 1000
  EXPECT_EQ(ctl.observe_cycle(5000), 8u);    // 5000/8 = 625 < 1000
  EXPECT_EQ(ctl.observe_cycle(100000), 128u);
}

TEST(AdaptiveController, RecoversFinerWhenLoadDrops) {
  AdaptiveRateController ctl(config(1000));
  EXPECT_EQ(ctl.observe_cycle(100000), 128u);
  EXPECT_EQ(ctl.observe_cycle(500), 1u);
}

TEST(AdaptiveController, RespectsMaxGranularity) {
  auto cfg = config(10);
  cfg.max_granularity = 64;
  AdaptiveRateController ctl(cfg);
  EXPECT_EQ(ctl.observe_cycle(1'000'000), 64u);  // clamped
  EXPECT_GT(ctl.expected_examined(), 10.0);      // over budget but capped
}

TEST(AdaptiveController, HeadroomShrinksEffectiveBudget) {
  auto cfg = config(1000);
  cfg.headroom = 0.5;
  AdaptiveRateController ctl(cfg);
  EXPECT_EQ(ctl.observe_cycle(600), 2u);  // 600 > 500 effective
}

TEST(AdaptiveController, SmoothingDampsSpikes) {
  auto cfg = config(1000);
  cfg.smoothing_alpha = 0.1;
  AdaptiveRateController ctl(cfg);
  EXPECT_EQ(ctl.observe_cycle(800), 1u);
  // One spike barely moves the estimate: 0.1*10000 + 0.9*800 = 1720 -> k=2.
  EXPECT_EQ(ctl.observe_cycle(10000), 2u);
  EXPECT_NEAR(ctl.load_estimate(), 1720.0, 1.0);
}

TEST(AdaptiveController, ExpectedExaminedReflectsDecision) {
  AdaptiveRateController ctl(config(1000));
  ctl.observe_cycle(3000);
  EXPECT_EQ(ctl.granularity(), 4u);
  EXPECT_DOUBLE_EQ(ctl.expected_examined(), 750.0);
}

TEST(AdaptiveController, Validation) {
  auto cfg = config();
  cfg.examined_budget_per_cycle = 0;
  EXPECT_THROW(AdaptiveRateController{cfg}, std::invalid_argument);

  cfg = config();
  cfg.min_granularity = 3;  // not a power of two
  EXPECT_THROW(AdaptiveRateController{cfg}, std::invalid_argument);

  cfg = config();
  cfg.min_granularity = 64;
  cfg.max_granularity = 8;
  EXPECT_THROW(AdaptiveRateController{cfg}, std::invalid_argument);

  cfg = config();
  cfg.headroom = 0.0;
  EXPECT_THROW(AdaptiveRateController{cfg}, std::invalid_argument);

  cfg = config();
  cfg.smoothing_alpha = 1.5;
  EXPECT_THROW(AdaptiveRateController{cfg}, std::invalid_argument);
}

TEST(AdaptiveController, NeverExceedsBudgetUnderGrowth) {
  // Property: with max granularity high enough, the expected examined count
  // stays within budget across a long growth run.
  AdaptiveRateController ctl(config(1000));
  double load = 100.0;
  for (int cycle = 0; cycle < 60; ++cycle) {
    ctl.observe_cycle(static_cast<std::uint64_t>(load));
    EXPECT_LE(ctl.expected_examined(), 1000.0 + 1e-9) << "cycle " << cycle;
    load *= 1.15;
  }
  EXPECT_GT(ctl.granularity(), 1u);
}

}  // namespace
}  // namespace netsample::core
