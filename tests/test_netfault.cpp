// The socket/pipe Transport layer and the netfault wire-impairment
// wrapper: strict host:port parsing, loopback framing, listener/dial
// round trips over 127.0.0.1, the discard-partial-on-close guarantee that
// makes torn RESULT lines unparseable by construction, and the seeded
// determinism of every fault kind (drop, dup, trunc, delay, disconnect).
#include "faultsim/netfault.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "shard/transport.h"

namespace netsample {
namespace {

using faultsim::NetFaultSpec;
using faultsim::NetFaultTransport;
using faultsim::encode_netfault_spec;
using faultsim::parse_netfault_spec;
using shard::ReadResult;
using shard::Transport;

/// A connected pair of pipe transports: lines written to `a` are read from
/// `b` and vice versa (the unit-test stand-in for a socket).
struct Loopback {
  std::unique_ptr<Transport> a;
  std::unique_ptr<Transport> b;

  Loopback() {
    int ab[2] = {-1, -1};
    int ba[2] = {-1, -1};
    EXPECT_EQ(::pipe(ab), 0);
    EXPECT_EQ(::pipe(ba), 0);
    a = shard::make_fd_transport(ba[0], ab[1]);
    b = shard::make_fd_transport(ab[0], ba[1]);
  }
};

// ---------------------------------------------------------------------------
// Spec codec.

TEST(NetFaultSpec, CodecRoundTrips) {
  const std::string text =
      "seed=7,drop=0.1,dup=0.05,trunc=0.01,delay=0.2,delay-ms=9,"
      "disconnect-every=40,max-faults=3";
  auto spec = parse_netfault_spec(text);
  ASSERT_TRUE(spec.has_value()) << spec.status().to_string();
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_EQ(spec->drop, 0.1);
  EXPECT_EQ(spec->dup, 0.05);
  EXPECT_EQ(spec->trunc, 0.01);
  EXPECT_EQ(spec->delay, 0.2);
  EXPECT_EQ(spec->delay_ms, 9);
  EXPECT_EQ(spec->disconnect_every, 40u);
  EXPECT_EQ(spec->max_faults, 3u);

  auto again = parse_netfault_spec(encode_netfault_spec(*spec));
  ASSERT_TRUE(again.has_value()) << again.status().to_string();
  EXPECT_EQ(again->seed, spec->seed);
  EXPECT_EQ(again->drop, spec->drop);
  EXPECT_EQ(again->dup, spec->dup);
  EXPECT_EQ(again->trunc, spec->trunc);
  EXPECT_EQ(again->delay, spec->delay);
  EXPECT_EQ(again->delay_ms, spec->delay_ms);
  EXPECT_EQ(again->disconnect_every, spec->disconnect_every);
  EXPECT_EQ(again->max_faults, spec->max_faults);
}

TEST(NetFaultSpec, DefaultsRoundTripThroughEncode) {
  auto spec = parse_netfault_spec(encode_netfault_spec(NetFaultSpec{}));
  ASSERT_TRUE(spec.has_value()) << spec.status().to_string();
  EXPECT_EQ(spec->seed, 1u);
  EXPECT_EQ(spec->drop, 0.0);
  EXPECT_EQ(spec->disconnect_every, 0u);
}

TEST(NetFaultSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "bogus=1",          // unknown key
      "drop",             // no '='
      "drop=",            // empty value
      "drop=x",           // not a number
      "drop=0.5x",        // trailing garbage
      "drop=-0.1",        // negative probability
      "drop=1.5",         // probability > 1
      "drop=0.6,dup=0.6", // probabilities sum above 1
      "seed=abc",         // not an integer
      "delay-ms=-1",      // negative duration
      "seed=1,,drop=0.1", // empty item
  };
  for (const char* text : bad) {
    auto spec = parse_netfault_spec(text);
    EXPECT_FALSE(spec.has_value()) << "accepted: " << text;
    if (!spec.has_value()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

// ---------------------------------------------------------------------------
// Transport: framing, host:port parsing, listener/dial.

TEST(ShardTransport, PipeLoopbackFramesLines) {
  Loopback wire;
  ASSERT_TRUE(wire.a->write_line("LEASE 3"));
  ASSERT_TRUE(wire.a->write_line("STOP"));
  std::string line;
  ASSERT_EQ(wire.b->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "LEASE 3");
  ASSERT_EQ(wire.b->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "STOP");

  // And the nonblocking coordinator-side path.
  ASSERT_TRUE(wire.b->write_line("RESULT 0 aa"));
  ASSERT_TRUE(wire.b->write_line("RESULT 1 bb"));
  std::vector<std::string> lines;
  ASSERT_EQ(wire.a->drain(&lines), ReadResult::kLine);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "RESULT 0 aa");
  EXPECT_EQ(lines[1], "RESULT 1 bb");
  EXPECT_EQ(wire.a->drain(&lines), ReadResult::kNoData);
}

TEST(ShardTransport, PartialLineIsDiscardedOnClose) {
  // The satellite-3 guarantee at its root: a line with no terminating
  // newline — a torn write from a dying peer — is never delivered.
  Loopback wire;
  ASSERT_TRUE(wire.a->write_line("RESULT 0 complete"));
  ASSERT_TRUE(wire.a->write_bytes("RESULT 1 torn-mid-pay"));
  wire.a->close();
  std::string line;
  ASSERT_EQ(wire.b->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "RESULT 0 complete");
  EXPECT_EQ(wire.b->read_line(&line), ReadResult::kClosed);

  // Same through drain(): the torn tail evaporates, kClosed surfaces.
  Loopback wire2;
  ASSERT_TRUE(wire2.a->write_bytes("RESULT 9 torn"));
  wire2.a->close();
  std::vector<std::string> lines;
  ReadResult r = wire2.b->drain(&lines);
  while (r == ReadResult::kNoData || r == ReadResult::kLine) {
    r = wire2.b->drain(&lines);
  }
  EXPECT_EQ(r, ReadResult::kClosed);
  EXPECT_TRUE(lines.empty());
}

TEST(ShardTransport, ParseHostPortIsStrict) {
  auto ok = shard::parse_host_port("127.0.0.1:8080");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->first, "127.0.0.1");
  EXPECT_EQ(ok->second, 8080);

  for (const char* bad :
       {"", "127.0.0.1", ":", "host:", "host:x", "host:12x", "host:-1",
        "host:65536"}) {
    auto parsed = shard::parse_host_port(bad);
    EXPECT_FALSE(parsed.has_value()) << "accepted: " << bad;
  }
}

TEST(ShardTransport, ListenerAcceptAndDialRoundTrip) {
  auto listener = shard::Listener::open("127.0.0.1:0");
  ASSERT_TRUE(listener.has_value()) << listener.status().to_string();
  EXPECT_GT(listener->port(), 0);  // ephemeral port resolved

  auto client = shard::dial(listener->address());
  ASSERT_TRUE(client.has_value()) << client.status().to_string();

  std::unique_ptr<Transport> server;
  for (int i = 0; i < 1000 && server == nullptr; ++i) {
    server = listener->accept_connection();
    if (server == nullptr) ::usleep(1000);
  }
  ASSERT_NE(server, nullptr);

  ASSERT_TRUE((*client)->write_line("HELLO 42 100 0 1"));
  std::string line;
  ASSERT_EQ(server->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "HELLO 42 100 0 1");
  ASSERT_TRUE(server->write_line("LEASE 0"));
  ASSERT_EQ((*client)->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "LEASE 0");

  // Half-close: the peer sees EOF after the last line, reads still work.
  ASSERT_TRUE(server->write_line("STOP"));
  server->shutdown_write();
  ASSERT_EQ((*client)->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "STOP");
  EXPECT_EQ((*client)->read_line(&line), ReadResult::kClosed);
  ASSERT_TRUE((*client)->write_line("BYE 0"));  // our side still writes
  ASSERT_EQ(server->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "BYE 0");
}

TEST(ShardTransport, DialFailsClosedWhenNobodyListens) {
  int dead_port = 0;
  {
    auto listener = shard::Listener::open("127.0.0.1:0");
    ASSERT_TRUE(listener.has_value());
    dead_port = listener->port();
    listener->close();
  }
  shard::DialOptions opts;
  opts.retries = 1;
  opts.initial_backoff_s = 0.01;
  opts.max_backoff_s = 0.02;
  auto conn =
      shard::dial("127.0.0.1:" + std::to_string(dead_port), opts);
  ASSERT_FALSE(conn.has_value());
  EXPECT_EQ(conn.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// NetFaultTransport: each fault kind, exemptions, determinism.

TEST(NetFaultTransport, DropVanishesExactlyOneLine) {
  Loopback wire;
  NetFaultSpec spec;
  spec.seed = 5;
  spec.drop = 1.0;
  spec.max_faults = 1;
  NetFaultTransport faulty(spec, std::move(wire.a));

  ASSERT_TRUE(faulty.write_line("RESULT 0 gone"));  // sender believes it went
  ASSERT_TRUE(faulty.write_line("RESULT 1 kept"));
  std::string line;
  ASSERT_EQ(wire.b->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "RESULT 1 kept");
  EXPECT_EQ(faulty.report().dropped, 1u);
  EXPECT_EQ(faulty.report().lines_seen, 2u);
}

TEST(NetFaultTransport, DuplicateDeliversTheLineTwice) {
  Loopback wire;
  NetFaultSpec spec;
  spec.seed = 5;
  spec.dup = 1.0;
  spec.max_faults = 1;
  NetFaultTransport faulty(spec, std::move(wire.a));

  ASSERT_TRUE(faulty.write_line("RESULT 7 payload"));
  std::string line;
  ASSERT_EQ(wire.b->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "RESULT 7 payload");
  ASSERT_EQ(wire.b->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "RESULT 7 payload");
  EXPECT_EQ(faulty.report().duplicated, 1u);
}

TEST(NetFaultTransport, TruncateTearsTheLineAndClosesTheWire) {
  Loopback wire;
  NetFaultSpec spec;
  spec.seed = 5;
  spec.trunc = 1.0;
  spec.max_faults = 1;
  NetFaultTransport faulty(spec, std::move(wire.a));

  // The torn write fails from the sender's point of view (the wire died
  // mid-line), and the receiver must never see a parseable RESULT.
  EXPECT_FALSE(faulty.write_line("RESULT 3 half-written-payload"));
  EXPECT_TRUE(faulty.is_closed());
  EXPECT_EQ(faulty.report().truncated, 1u);
  std::string line;
  EXPECT_EQ(wire.b->read_line(&line), ReadResult::kClosed);
}

TEST(NetFaultTransport, DisconnectCadenceClosesEveryNthLine) {
  Loopback wire;
  NetFaultSpec spec;
  spec.disconnect_every = 2;
  NetFaultTransport faulty(spec, std::move(wire.a));

  ASSERT_TRUE(faulty.write_line("RESULT 0 a"));
  (void)faulty.write_line("RESULT 1 b");  // delivered, then the wire closes
  EXPECT_TRUE(faulty.is_closed());
  EXPECT_EQ(faulty.report().disconnects, 1u);
  std::string line;
  ASSERT_EQ(wire.b->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "RESULT 0 a");
  ASSERT_EQ(wire.b->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "RESULT 1 b");
  EXPECT_EQ(wire.b->read_line(&line), ReadResult::kClosed);

  // rebind() continues the schedule on a fresh wire: the cadence counter
  // is NOT reset by the reconnect.
  Loopback wire2;
  faulty.rebind(std::move(wire2.a));
  EXPECT_FALSE(faulty.is_closed());
  ASSERT_TRUE(faulty.write_line("RESULT 2 c"));
  (void)faulty.write_line("RESULT 3 d");
  EXPECT_TRUE(faulty.is_closed());
  EXPECT_EQ(faulty.report().disconnects, 2u);
}

TEST(NetFaultTransport, HandshakeAndShutdownVerbsAreExempt) {
  Loopback wire;
  NetFaultSpec spec;
  spec.seed = 3;
  spec.drop = 1.0;  // every impairable line vanishes, no cap
  NetFaultTransport faulty(spec, std::move(wire.a));

  ASSERT_TRUE(faulty.write_line("HELLO 42 100 0 1"));
  ASSERT_TRUE(faulty.write_line("LEASE 0"));   // dropped
  ASSERT_TRUE(faulty.write_line("RESULT 0 x")); // dropped
  ASSERT_TRUE(faulty.write_line("BYE 2"));
  ASSERT_TRUE(faulty.write_line("STOP"));
  std::string line;
  ASSERT_EQ(wire.b->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "HELLO 42 100 0 1");
  ASSERT_EQ(wire.b->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "BYE 2");
  ASSERT_EQ(wire.b->read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "STOP");
  EXPECT_EQ(faulty.report().dropped, 2u);
}

TEST(NetFaultTransport, InboundFaultsApplyOnReadToo) {
  Loopback wire;
  NetFaultSpec spec;
  spec.seed = 5;
  spec.drop = 1.0;
  spec.max_faults = 1;
  NetFaultTransport faulty(spec, std::move(wire.b));

  ASSERT_TRUE(wire.a->write_line("LEASE 0"));  // swallowed on the way in
  ASSERT_TRUE(wire.a->write_line("LEASE 1"));
  std::string line;
  ASSERT_EQ(faulty.read_line(&line), ReadResult::kLine);
  EXPECT_EQ(line, "LEASE 1");
  EXPECT_EQ(faulty.report().dropped, 1u);
}

TEST(NetFaultTransport, SameSeedSameSchedule) {
  const auto run = [](std::uint64_t seed) {
    Loopback wire;
    NetFaultSpec spec;
    spec.seed = seed;
    spec.drop = 0.4;
    spec.dup = 0.3;
    NetFaultTransport faulty(spec, std::move(wire.a));
    for (int i = 0; i < 24; ++i) {
      (void)faulty.write_line("RESULT " + std::to_string(i) + " x");
    }
    faulty.close();
    std::vector<std::string> delivered;
    ReadResult r = ReadResult::kLine;
    while (r != ReadResult::kClosed) r = wire.b->drain(&delivered);
    return std::make_pair(delivered, faulty.report());
  };
  const auto [lines1, report1] = run(99);
  const auto [lines2, report2] = run(99);
  EXPECT_EQ(lines1, lines2);
  EXPECT_EQ(report1.dropped, report2.dropped);
  EXPECT_EQ(report1.duplicated, report2.duplicated);
  EXPECT_GT(report1.dropped, 0u);
  EXPECT_GT(report1.duplicated, 0u);
}

}  // namespace
}  // namespace netsample
