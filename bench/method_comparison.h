// Shared driver for Figures 8 and 9: mean phi vs sampling fraction for all
// five sampling methods on one target. The method x granularity grid runs
// on the parallel experiment engine; `jobs` only changes wall-clock time,
// never the numbers. Flags come pre-parsed through tools::parse_figure_args
// (strict vocabulary, unknown flags exit 64).
#pragma once

#include "bench_common.h"
#include "tools/cli_args.h"

namespace netsample::bench {

inline int run_method_comparison(core::Target target, const char* figure_id,
                                 const char* figure_title,
                                 const tools::CommonOptions& options) {
  banner(figure_title,
         "All five methods, 5 replications each, 1024s interval");

  exper::Experiment ex = tools::figure_experiment(options, kDefaultSeed);

  const core::Method methods[] = {
      core::Method::kSystematicCount, core::Method::kStratifiedCount,
      core::Method::kSimpleRandom, core::Method::kSystematicTimer,
      core::Method::kStratifiedTimer};
  constexpr std::size_t kMethods = 5;
  const auto ladder = exper::granularity_ladder(4, 16384);
  const std::uint64_t base_seed = 101;

  std::vector<exper::GridTask> tasks;
  tasks.reserve(ladder.size() * kMethods);
  for (std::uint64_t k : ladder) {
    for (std::size_t mi = 0; mi < kMethods; ++mi) {
      exper::GridTask task;
      task.config.method = methods[mi];
      task.config.target = target;
      task.config.granularity = k;
      task.config.interval = ex.interval(1024.0);
      task.config.mean_interarrival_usec = ex.mean_interarrival_usec();
      task.config.replications = 5;
      task.config.cache = &ex.binned_cache();
      tasks.push_back(task);
    }
  }
  exper::ParallelRunner runner(options.jobs);
  const auto cells = runner.run(tasks, base_seed);

  std::vector<ChartSeries> chart = {
      {"systematic", 's', {}}, {"stratified", 't', {}},
      {"simple-rand", 'r', {}}, {"sys/timer", 'T', {}},
      {"strat/timer", 'S', {}}};
  std::vector<std::string> x_ticks;

  TextTable t({"1/x", "systematic", "stratified", "simple-rand",
               "sys/timer", "strat/timer"});
  for (std::size_t ki = 0; ki < ladder.size(); ++ki) {
    const std::uint64_t k = ladder[ki];
    std::vector<std::string> row = {fmt_fraction(k)};
    std::vector<std::string> csv_cells = {figure_id, std::to_string(k)};
    x_ticks.push_back(fmt_fraction(k));
    for (std::size_t mi = 0; mi < kMethods; ++mi) {
      const auto& cell = cells[ki * kMethods + mi];
      row.push_back(fmt_double(cell.phi_mean(), 4));
      csv_cells.push_back(fmt_double(cell.phi_mean(), 5));
      chart[mi].y.push_back(std::max(1e-5, cell.phi_mean()));
    }
    t.add_row(std::move(row));
    csv_row(csv_cells);
  }
  t.print(std::cout);

  ChartOptions opts;
  opts.log_y = true;
  opts.height = 18;
  opts.x_label = "sampling granularity 1/x (log scale)";
  std::cout << "\nmean phi (log scale):\n"
            << render_chart(chart, x_ticks, opts) << "\n";
  note("paper shape: the two timer curves sit above the three packet");
  note("curves at every fraction; the three packet curves nearly coincide.");
  tools::write_obs_outputs(options);
  return 0;
}

}  // namespace netsample::bench
