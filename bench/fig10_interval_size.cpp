// Figure 10: mean systematic phi scores for the packet size distribution as
// a function of elapsed time (minutes), at several sampling fractions.
#include "interval_sweep.h"

int main(int argc, char** argv) {
  const auto options = netsample::tools::parse_figure_args(
      argc, argv, "fig10_interval_size [--jobs N] [--pcap FILE] [--legacy-scan] [--metrics-out FILE] [--trace-out FILE]");
  return netsample::bench::run_interval_sweep(
      netsample::core::Target::kPacketSize, "fig10",
      "Figure 10 (paper: systematic phi vs elapsed time, packet size)", options);
}
