// Figure 10: mean systematic phi scores for the packet size distribution as
// a function of elapsed time (minutes), at several sampling fractions.
#include "interval_sweep.h"

int main(int argc, char** argv) {
  netsample::bench::bench_legacy_scan(argc, argv);
  return netsample::bench::run_interval_sweep(
      netsample::core::Target::kPacketSize, "fig10",
      "Figure 10 (paper: systematic phi vs elapsed time, packet size)",
      argc, argv);
}
