// Table 2: summary statistics of the per-second packet, byte, and mean
// packet size distributions over the hour-long parent population.
#include "bench_common.h"
#include "trace/summary.h"

using namespace netsample;

namespace {

void row(TextTable& t, const std::string& name, const stats::Summary& s,
         const std::vector<std::string>& paper) {
  t.add_row({name + " (paper)", paper[0], paper[1], paper[2], paper[3], paper[4],
             paper[5], paper[6], paper[7], paper[8]});
  t.add_row({name + " (ours)", fmt_double(s.min, 1), fmt_double(s.q1, 1),
             fmt_double(s.median, 1), fmt_double(s.q3, 1), fmt_double(s.max, 1),
             fmt_double(s.mean, 1), fmt_double(s.stddev, 1),
             fmt_double(s.skewness, 2), fmt_double(s.kurtosis, 2)});
  netsample::bench::csv_row({"table02", name, fmt_double(s.min, 2), fmt_double(s.q1, 2),
                         fmt_double(s.median, 2), fmt_double(s.q3, 2),
                         fmt_double(s.max, 2), fmt_double(s.mean, 2),
                         fmt_double(s.stddev, 2), fmt_double(s.skewness, 3),
                         fmt_double(s.kurtosis, 3)});
}

}  // namespace

int main() {
  bench::banner("Table 2 (paper: per-second volume distribution summary)",
                "Synthetic SDSC hour vs the paper's 1.636M-packet hour");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto s = trace::summarize_per_second(ex.full());

  bench::note("population: " + fmt_count(s.total_packets) +
              " packets (paper: 1,636,000)");
  std::cout << "\n";

  TextTable t({"distribution", "min", "25%", "median", "75%", "max", "mean",
               "stddev", "skew", "kurtosis"});
  row(t, "packets/s", s.packet_rate,
      {"156", "364", "412", "473", "966", "424.2", "85.1", "0.96", "4.95"});
  row(t, "kB/s", s.kilobyte_rate,
      {"26.6", "71.1", "90.9", "117.6", "330.6", "98.6", "38.6", "1.2", "5.2"});
  row(t, "mean pkt size (B)", s.mean_packet_size,
      {"82", "190", "222", "259", "398", "226.2", "50.5", "0.36", "2.9"});
  t.print(std::cout);
  return 0;
}
