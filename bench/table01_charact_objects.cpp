// Table 1: packet categorization objects on T1 and T3 backbone nodes.
//
// We run both node types' collection agents over the same traffic and print
// the support matrix plus a digest of what each supported object collected,
// demonstrating that every Table-1 object is implemented.
#include "bench_common.h"
#include "charact/agent.h"
#include "net/headers.h"
#include "net/ipv4.h"
#include "net/ports.h"
#include "synth/presets.h"

using namespace netsample;

int main() {
  bench::banner("Table 1 (paper: categorization objects on T1/T3 nodes)",
                "All seven NNStat/ARTS objects, fed 4 minutes of traffic");

  synth::TraceModel model(synth::sdsc_minutes_config(4.0, bench::kDefaultSeed));
  const auto trace = model.generate();

  TextTable support({"object", "T1", "T3"});
  for (auto kind :
       {charact::ObjectKind::kNetMatrix, charact::ObjectKind::kPortDistribution,
        charact::ObjectKind::kProtocolDistribution,
        charact::ObjectKind::kPacketLengthHistogram,
        charact::ObjectKind::kOutboundVolume,
        charact::ObjectKind::kArrivalRateHistogram,
        charact::ObjectKind::kTransitVolume}) {
    support.add_row({charact::object_kind_name(kind),
                     charact::node_supports(charact::NodeType::kT1, kind) ? "Y"
                                                                          : "N/A",
                     charact::node_supports(charact::NodeType::kT3, kind) ? "Y"
                                                                          : "N/A"});
  }
  support.print(std::cout);

  charact::CollectionAgent agent(charact::NodeType::kT1);
  agent.run(trace.view());
  const auto& rep = agent.reports().front();

  std::cout << "\nT1 agent, first 15-minute cycle ("
            << fmt_count(rep.packets_examined) << " packets examined):\n\n";

  std::cout << "protocol distribution:\n";
  TextTable protos({"protocol", "packets", "bytes"});
  for (const auto& [proto, vol] : rep.protocols) {
    protos.add_row({net::ip_proto_name(proto), fmt_count(vol.packets),
                    fmt_count(vol.bytes)});
    bench::csv_row({"table01", "proto", net::ip_proto_name(proto),
                std::to_string(vol.packets), std::to_string(vol.bytes)});
  }
  protos.print(std::cout);

  std::cout << "\ntop-8 TCP/UDP services (well-known subset):\n";
  TextTable ports({"proto", "port", "service", "packets", "bytes"});
  charact::PortDistributionObject port_obj;
  for (const auto& p : trace.packets()) port_obj.observe(p);
  for (const auto& [key, vol] : port_obj.top(8)) {
    const auto name = key.port == 0
                          ? std::string("(other)")
                          : std::string(net::well_known_port_name(key.port)
                                            .value_or("?"));
    ports.add_row({net::ip_proto_name(key.protocol), std::to_string(key.port),
                   name, fmt_count(vol.packets), fmt_count(vol.bytes)});
    bench::csv_row({"table01", "port", std::to_string(key.port), name,
                std::to_string(vol.packets)});
  }
  ports.print(std::cout);

  std::cout << "\ntop-5 source-destination network pairs:\n";
  charact::NetMatrixObject matrix;
  for (const auto& p : trace.packets()) matrix.observe(p);
  TextTable nets({"src net", "dst net", "packets", "bytes"});
  for (const auto& [key, vol] : matrix.top(5)) {
    nets.add_row({key.first.to_string(), key.second.to_string(),
                  fmt_count(vol.packets), fmt_count(vol.bytes)});
  }
  nets.print(std::cout);
  bench::note("net matrix distinct pairs: " + fmt_count(matrix.pair_count()));

  std::cout << "\npacket-length histogram (50-byte granularity, nonzero bins):\n";
  TextTable lens({"range (bytes)", "packets"});
  charact::PacketLengthHistogramObject len_obj;
  for (const auto& p : trace.packets()) len_obj.observe(p);
  const auto& lh = len_obj.histogram();
  for (std::size_t b = 0; b < lh.bin_count(); ++b) {
    if (lh.count(b) > 0) {
      lens.add_row({lh.bin_label(b), fmt_count(lh.count(b))});
    }
  }
  lens.print(std::cout);

  std::cout << "\nper-second arrival rate histogram (20 pps granularity, "
               "nonzero bins):\n";
  charact::ArrivalRateHistogramObject rate_obj;
  for (const auto& p : trace.packets()) rate_obj.observe(p);
  rate_obj.flush();
  TextTable rates({"rate range (pps)", "seconds"});
  const auto& rh = rate_obj.histogram();
  for (std::size_t b = 0; b < rh.bin_count(); ++b) {
    if (rh.count(b) > 0) {
      rates.add_row({rh.bin_label(b), fmt_count(rh.count(b))});
    }
  }
  rates.print(std::cout);
  return 0;
}
