// A/B wall-clock harness for the fused sweep engine: runs the full
// method x granularity grid cell-by-cell on both the cache fast path and
// the legacy streaming scan, checks that the phi values agree exactly, and
// writes the per-cell timings plus a headline speedup to a JSON artifact
// (BENCH_sweep.json in CI).
//
// Unlike the micro_* google-benchmark binaries this is a plain-chrono
// driver, because each measurement must toggle the global legacy-scan
// switch around an otherwise identical run_cell call.
//
//   --out FILE      where to write the JSON report (default BENCH_sweep.json)
//   --minutes M     synthetic trace length (default 8)
//   --reps R        replications per cell (default 5)
//   --legacy-scan   time the legacy path only (no comparison, no speedup)
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "bench_common.h"

using namespace netsample;

namespace {

using Clock = std::chrono::steady_clock;

double parse_positive_double(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v > 0.0)) {
    std::fprintf(stderr, "error: %s: expected a positive number, got \"%s\"\n",
                 flag, text);
    std::exit(2);
  }
  return v;
}

/// Mean wall-clock milliseconds for run_cell on one path, repeating the
/// call until at least `min_elapsed_ms` has accumulated so that very fast
/// cells (the whole point of the fast path) still get a stable reading.
double time_cell(const exper::CellConfig& cfg, bool legacy,
                 std::vector<double>* phis, double min_elapsed_ms = 10.0) {
  core::force_legacy_scan(legacy);
  double elapsed_ms = 0.0;
  int runs = 0;
  do {
    const auto t0 = Clock::now();
    const auto result = exper::run_cell(cfg);
    const auto t1 = Clock::now();
    elapsed_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ++runs;
    if (runs == 1) *phis = result.phi_values();
  } while (elapsed_ms < min_elapsed_ms && runs < 1000);
  return elapsed_ms / runs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sweep.json";
  double minutes = 8.0;
  int reps = 5;
  const bool legacy_only = bench::bench_legacy_scan(argc, argv);
  // --metrics-out/--trace-out also serve as the obs-overhead A/B switch:
  // the acceptance bar is <3% on the fast path with metrics enabled.
  const bench::ObsArgs obs_args = bench::bench_obs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else if (arg == "--minutes" && has_value) {
      minutes = parse_positive_double("--minutes", argv[++i]);
    } else if (arg == "--reps" && has_value) {
      reps = static_cast<int>(
          parse_positive_double("--reps", argv[++i]));
    } else if (arg == "--out" || arg == "--minutes" || arg == "--reps") {
      std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
      return 2;
    }
  }

  bench::banner("micro_sweep (fused sweep engine A/B harness)",
                legacy_only ? "Timing the legacy streaming scan only"
                            : "Fast path vs legacy scan, per grid cell");

  exper::Experiment ex(bench::kDefaultSeed, minutes);
  const auto& cache = ex.binned_cache();

  const core::Method methods[] = {
      core::Method::kSystematicCount, core::Method::kStratifiedCount,
      core::Method::kSimpleRandom, core::Method::kSystematicTimer,
      core::Method::kStratifiedTimer};
  const auto ladder = exper::granularity_ladder(2, 32768);

  std::ostringstream cells_json;
  TextTable t({"method", "1/x", "legacy ms", "fast ms", "speedup"});
  double headline_legacy_ms = 0.0, headline_fast_ms = 0.0;
  constexpr std::uint64_t kHeadlineMinK = 1024;
  bool all_match = true;
  bool first_cell = true;

  for (const auto method : methods) {
    for (const std::uint64_t k : ladder) {
      exper::CellConfig cfg;
      cfg.method = method;
      cfg.target = core::Target::kPacketSize;
      cfg.granularity = k;
      cfg.interval = ex.full();
      cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
      cfg.replications = reps;
      cfg.base_seed = 1;
      cfg.cache = &cache;

      std::vector<double> phi_legacy, phi_fast;
      const double legacy_ms = time_cell(cfg, /*legacy=*/true, &phi_legacy);
      double fast_ms = 0.0;
      bool match = true;
      if (!legacy_only) {
        fast_ms = time_cell(cfg, /*legacy=*/false, &phi_fast);
        // Bit-identical, not approximately equal: the fast path feeds the
        // same integer histogram counts into the same scoring code.
        match = phi_fast == phi_legacy;
        all_match = all_match && match;
        if (k >= kHeadlineMinK) {
          headline_legacy_ms += legacy_ms;
          headline_fast_ms += fast_ms;
        }
      }

      t.add_row({core::method_name(method), fmt_fraction(k),
                 fmt_double(legacy_ms, 3),
                 legacy_only ? "-" : fmt_double(fast_ms, 3),
                 legacy_only ? "-" : fmt_double(legacy_ms / fast_ms, 1)});

      if (!first_cell) cells_json << ",";
      first_cell = false;
      cells_json << "\n    {\"method\": \"" << core::method_name(method)
                 << "\", \"granularity\": " << k
                 << ", \"wall_ms_legacy\": " << legacy_ms;
      if (!legacy_only) {
        cells_json << ", \"wall_ms_fast\": " << fast_ms
                   << ", \"speedup\": " << legacy_ms / fast_ms
                   << ", \"phi_match\": " << (match ? "true" : "false");
      }
      cells_json << "}";
    }
  }
  core::clear_legacy_scan_override();
  t.print(std::cout);

  std::ofstream out(out_path);
  out << "{\n  \"trace_minutes\": " << minutes
      << ",\n  \"packets\": " << ex.population_size()
      << ",\n  \"replications\": " << reps
      << ",\n  \"legacy_only\": " << (legacy_only ? "true" : "false")
      << ",\n  \"cells\": [" << cells_json.str() << "\n  ]";
  if (!legacy_only) {
    out << ",\n  \"headline\": {\"min_granularity\": " << kHeadlineMinK
        << ", \"legacy_ms\": " << headline_legacy_ms
        << ", \"fast_ms\": " << headline_fast_ms
        << ", \"speedup\": " << headline_legacy_ms / headline_fast_ms
        << "},\n  \"phi_all_match\": " << (all_match ? "true" : "false");
  }
  out << "\n}\n";

  if (!legacy_only) {
    bench::note("headline (k >= " + std::to_string(kHeadlineMinK) +
                "): " + fmt_double(headline_legacy_ms, 1) + " ms legacy vs " +
                fmt_double(headline_fast_ms, 3) + " ms fast = " +
                fmt_double(headline_legacy_ms / headline_fast_ms, 1) + "x");
    bench::note(all_match ? "phi values bit-identical on every cell"
                          : "PHI MISMATCH — fast path disagrees with legacy");
  }
  bench::note("wrote " + out_path);
  bench::bench_obs_write(obs_args);
  return all_match ? 0 : 1;
}
