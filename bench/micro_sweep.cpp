// A/B/C wall-clock harness for the fused sweep engine: runs the full
// method x granularity grid cell-by-cell on the legacy streaming scan, the
// fast path with scalar kernels, and the fast path with the best SIMD
// variant, checks that the phi values agree exactly across all three, and
// writes per-cell timings plus headline speedups and a `machine` block to a
// JSON artifact (BENCH_sweep.json in CI).
//
// Unlike the micro_* google-benchmark binaries this is a plain-chrono
// driver, because each measurement must toggle the global legacy-scan and
// SIMD-variant switches around an otherwise identical run_cell call.
//
//   --out FILE       where to write the JSON report (default BENCH_sweep.json)
//   --minutes M      synthetic trace length (default 8)
//   --reps R         replications per cell (default 5)
//   --workers N      also time the headline cells through the sharded
//                    multi-process runtime (N forked workers over one
//                    memory-mapped TraceStore) and report
//                    pkts_per_sec_multiproc plus the store map-vs-rebuild
//                    amortization (docs/SHARDING.md)
//   --legacy-scan    time the legacy path only (no comparison, no speedup)
//   --simd VARIANT   measure VARIANT instead of the best available one
//   --baseline FILE  compare the headline against a committed baseline
//   --tolerance PCT  allowed headline regression vs baseline (default 25)
//
// Exit codes: 0 ok, 1 phi mismatch / multiproc failure, 2 usage/IO,
// 3 baseline machine-class mismatch, 4 headline regression beyond
// tolerance.
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench_common.h"
#include "json_mini.h"

using namespace netsample;

namespace {

using Clock = std::chrono::steady_clock;
namespace simd = core::simd;

double parse_positive_double(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v > 0.0)) {
    std::fprintf(stderr, "error: %s: expected a positive number, got \"%s\"\n",
                 flag, text);
    std::exit(2);
  }
  return v;
}

/// Mean wall-clock milliseconds for run_cell on one path, repeating the
/// call until at least `min_elapsed_ms` has accumulated so that very fast
/// cells (the whole point of the fast path) still get a stable reading.
double time_cell(const exper::CellConfig& cfg, bool legacy,
                 simd::Variant variant, std::vector<double>* phis,
                 double min_elapsed_ms = 10.0) {
  core::force_legacy_scan(legacy);
  simd::force_variant(variant);
  double elapsed_ms = 0.0;
  int runs = 0;
  do {
    const auto t0 = Clock::now();
    const auto result = exper::run_cell(cfg);
    const auto t1 = Clock::now();
    elapsed_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ++runs;
    if (runs == 1) *phis = result.phi_values();
  } while (elapsed_ms < min_elapsed_ms && runs < 1000);
  return elapsed_ms / runs;
}

/// Wall-clock milliseconds to build the shared BinnedTraceCache under a
/// forced variant — the classify kernels' own benchmark.
double time_cache_build(const trace::Trace& t, simd::Variant variant) {
  simd::force_variant(variant);
  double best_ms = 1e300;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = Clock::now();
    const core::BinnedTraceCache cache(t.view());
    const auto t1 = Clock::now();
    best_ms = std::min(
        best_ms, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best_ms;
}

/// Gate the fresh headline against a committed baseline artifact. Refuses
/// to compare across machine classes or sweep configs (exit 3): a scalar
/// container comparing itself against an AVX2 baseline would "regress" by
/// the whole SIMD speedup. Regression beyond tolerance exits 4.
int check_baseline(const std::string& path, const std::string& machine_class,
                   double minutes, int reps, double pkts_per_sec,
                   double tolerance_pct) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: --baseline: cannot read %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto root = bench::json_parse(buf.str());
  if (!root || !root->is_object()) {
    std::fprintf(stderr, "error: --baseline: %s is not a JSON object\n",
                 path.c_str());
    return 2;
  }
  const std::string base_class =
      root->at("machine").at("machine_class").str_or("");
  if (base_class != machine_class) {
    std::fprintf(stderr,
                 "error: baseline machine class \"%s\" does not match this "
                 "run (\"%s\") — regenerate the baseline on this machine "
                 "class or pass the matching file\n",
                 base_class.c_str(), machine_class.c_str());
    return 3;
  }
  const double base_minutes = root->at("trace_minutes").num_or(-1.0);
  const double base_reps = root->at("replications").num_or(-1.0);
  if (base_minutes != minutes || base_reps != reps) {
    std::fprintf(stderr,
                 "error: baseline config (minutes=%g, reps=%g) does not "
                 "match this run (minutes=%g, reps=%d)\n",
                 base_minutes, base_reps, minutes, reps);
    return 3;
  }
  const double base_pps = root->at("headline").at("pkts_per_sec_best")
                              .num_or(0.0);
  if (!(base_pps > 0.0)) {
    std::fprintf(stderr,
                 "error: baseline %s has no headline.pkts_per_sec_best\n",
                 path.c_str());
    return 2;
  }
  const double floor = base_pps * (1.0 - tolerance_pct / 100.0);
  const double delta_pct = 100.0 * (pkts_per_sec - base_pps) / base_pps;
  bench::note("baseline " + path + ": " + fmt_double(base_pps / 1e6, 2) +
              " Mpkt/s, this run " + fmt_double(pkts_per_sec / 1e6, 2) +
              " Mpkt/s (" + (delta_pct >= 0 ? "+" : "") +
              fmt_double(delta_pct, 1) + "%, tolerance -" +
              fmt_double(tolerance_pct, 0) + "%)");
  if (pkts_per_sec < floor) {
    std::fprintf(stderr,
                 "error: headline regression: %.3g pkt/s is below the "
                 "baseline floor %.3g pkt/s (%.3g - %g%%)\n",
                 pkts_per_sec, floor, base_pps, tolerance_pct);
    return 4;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sweep.json";
  std::string baseline_path;
  double minutes = 8.0;
  double tolerance_pct = 25.0;
  int reps = 5;
  int workers = 0;  // 0 = skip the multi-process leg
  const bool legacy_only = bench::bench_legacy_scan(argc, argv);
  const auto forced = bench::bench_simd(argc, argv);
  // --metrics-out/--trace-out also serve as the obs-overhead A/B switch:
  // the acceptance bar is <3% on the fast path with metrics enabled.
  const bench::ObsArgs obs_args = bench::bench_obs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && has_value) {
      baseline_path = argv[++i];
    } else if (arg == "--minutes" && has_value) {
      minutes = parse_positive_double("--minutes", argv[++i]);
    } else if (arg == "--reps" && has_value) {
      reps = static_cast<int>(
          parse_positive_double("--reps", argv[++i]));
    } else if (arg == "--workers" && has_value) {
      workers = static_cast<int>(
          parse_positive_double("--workers", argv[++i]));
    } else if (arg == "--tolerance" && has_value) {
      tolerance_pct = parse_positive_double("--tolerance", argv[++i]);
    } else if (arg == "--out" || arg == "--baseline" || arg == "--minutes" ||
               arg == "--reps" || arg == "--workers" || arg == "--tolerance") {
      std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
      return 2;
    }
  }

  // The variant this report measures: --simd (resolved through
  // availability, so forcing neon on x86 measures scalar) or the best one.
  const simd::Variant measured =
      forced.has_value() ? simd::active_variant() : simd::best_variant();
  const bool with_simd = !legacy_only && measured != simd::Variant::kScalar;

  bench::banner("micro_sweep (fused sweep engine A/B/C harness)",
                legacy_only
                    ? "Timing the legacy streaming scan only"
                    : std::string("Legacy scan vs fast path (scalar) vs "
                                  "fast path (") +
                          simd::variant_name(measured) + "), per grid cell");
  bench::note("machine class: " + bench::machine_class(measured));

  exper::Experiment ex(bench::kDefaultSeed, minutes);

  // Classify-kernel benchmark: the one-off O(N) cache build, scalar vs
  // measured variant (identical bins, asserted by the differential suite).
  const double cache_scalar_ms =
      time_cache_build(ex.trace(), simd::Variant::kScalar);
  const double cache_simd_ms =
      with_simd ? time_cache_build(ex.trace(), measured) : cache_scalar_ms;
  const auto& cache = ex.binned_cache();

  const core::Method methods[] = {
      core::Method::kSystematicCount, core::Method::kStratifiedCount,
      core::Method::kSimpleRandom, core::Method::kSystematicTimer,
      core::Method::kStratifiedTimer};
  const auto ladder = exper::granularity_ladder(2, 32768);

  std::ostringstream cells_json;
  TextTable t({"method", "1/x", "legacy ms", "scalar ms",
               with_simd ? std::string(simd::variant_name(measured)) + " ms"
                         : "fast ms",
               "speedup", "simd x"});
  double headline_legacy_ms = 0.0, headline_scalar_ms = 0.0,
         headline_best_ms = 0.0;
  std::size_t headline_cells = 0;
  constexpr std::uint64_t kHeadlineMinK = 1024;
  bool all_match = true;
  bool first_cell = true;

  for (const auto method : methods) {
    for (const std::uint64_t k : ladder) {
      exper::CellConfig cfg;
      cfg.method = method;
      cfg.target = core::Target::kPacketSize;
      cfg.granularity = k;
      cfg.interval = ex.full();
      cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
      cfg.replications = reps;
      cfg.base_seed = 1;
      cfg.cache = &cache;

      std::vector<double> phi_legacy, phi_scalar, phi_simd;
      const double legacy_ms = time_cell(cfg, /*legacy=*/true,
                                         simd::Variant::kScalar, &phi_legacy);
      double scalar_ms = 0.0, simd_ms = 0.0;
      bool match = true;
      if (!legacy_only) {
        scalar_ms = time_cell(cfg, /*legacy=*/false, simd::Variant::kScalar,
                              &phi_scalar);
        // Bit-identical, not approximately equal: every path feeds the same
        // integer histogram counts into the same scoring code.
        match = phi_scalar == phi_legacy;
        if (with_simd) {
          simd_ms = time_cell(cfg, /*legacy=*/false, measured, &phi_simd);
          match = match && phi_simd == phi_legacy;
        } else {
          simd_ms = scalar_ms;
        }
        all_match = all_match && match;
        if (k >= kHeadlineMinK) {
          headline_legacy_ms += legacy_ms;
          headline_scalar_ms += scalar_ms;
          headline_best_ms += simd_ms;
          ++headline_cells;
        }
      }

      t.add_row({core::method_name(method), fmt_fraction(k),
                 fmt_double(legacy_ms, 3),
                 legacy_only ? "-" : fmt_double(scalar_ms, 3),
                 legacy_only || !with_simd ? "-" : fmt_double(simd_ms, 3),
                 legacy_only ? "-" : fmt_double(legacy_ms / simd_ms, 1),
                 legacy_only || !with_simd
                     ? "-"
                     : fmt_double(scalar_ms / simd_ms, 2)});

      if (!first_cell) cells_json << ",";
      first_cell = false;
      cells_json << "\n    {\"method\": \"" << core::method_name(method)
                 << "\", \"granularity\": " << k
                 << ", \"wall_ms_legacy\": " << legacy_ms;
      if (!legacy_only) {
        cells_json << ", \"wall_ms_scalar\": " << scalar_ms
                   << ", \"wall_ms_simd\": " << simd_ms
                   << ", \"speedup\": " << legacy_ms / simd_ms
                   << ", \"simd_speedup\": " << scalar_ms / simd_ms
                   << ", \"phi_match\": " << (match ? "true" : "false");
      }
      cells_json << "}";
    }
  }
  core::clear_legacy_scan_override();
  simd::clear_variant_override();
  t.print(std::cout);

  // Multi-process leg: the same headline cells (k >= 1024, packet size, all
  // methods) through the sharded coordinator — N forked workers scoring
  // over ONE memory-mapped TraceStore instead of N private cache rebuilds.
  // The amortization story is store-map vs cache-rebuild: each extra
  // process costs a map, not an O(N) re-bin.
  double store_write_ms = 0.0, store_map_ms = 0.0, multiproc_wall_ms = 0.0;
  double pkts_per_sec_multiproc = 0.0;
  std::uint64_t multiproc_worker_builds = 0;
  std::size_t multiproc_cells = 0;
  bool multiproc_ok = true;
  const bool run_multiproc = workers > 0 && !legacy_only;
  if (run_multiproc) {
    const std::string store_path = out_path + ".nstore";
    std::filesystem::remove(store_path);
    const double mean_size =
        trace::summarize_population(ex.full()).packet_size.mean;
    {
      const auto t0 = Clock::now();
      const Status st = shard::write_trace_store(
          store_path, cache, ex.mean_interarrival_usec(), mean_size);
      const auto t1 = Clock::now();
      if (!st.is_ok()) {
        std::fprintf(stderr, "error: --workers: %s\n", st.to_string().c_str());
        return 2;
      }
      store_write_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
    }
    for (int i = 0; i < 3; ++i) {
      const auto t0 = Clock::now();
      const auto opened =
          shard::TraceStore::open(store_path, shard::store_backend("mmap"));
      const auto t1 = Clock::now();
      if (!opened.has_value()) {
        std::fprintf(stderr, "error: --workers: %s\n",
                     opened.status().to_string().c_str());
        return 2;
      }
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      store_map_ms = i == 0 ? ms : std::min(store_map_ms, ms);
    }

    shard::SweepSpec spec;
    spec.targets = {core::Target::kPacketSize};
    spec.methods.assign(methods, methods + sizeof methods / sizeof methods[0]);
    for (const std::uint64_t k : ladder) {
      if (k >= kHeadlineMinK) spec.granularities.push_back(k);
    }
    spec.replications = reps;
    spec.base_seed = 1;
    multiproc_cells = spec.cell_count();

    shard::CoordinatorOptions copts;
    copts.workers = workers;
    copts.store_path = store_path;  // fork-only workers: no exec, same binary
    const auto t0 = Clock::now();
    const auto report = shard::run_sharded_sweep(spec, copts);
    const auto t1 = Clock::now();
    multiproc_wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (!report.has_value()) {
      std::fprintf(stderr, "error: --workers: %s\n",
                   report.status().to_string().c_str());
      return 2;
    }
    multiproc_worker_builds = report->worker_cache_builds;
    multiproc_ok = report->all_ok() && multiproc_worker_builds == 0;
    const double multiproc_pkts = static_cast<double>(ex.population_size()) *
                                  static_cast<double>(reps) *
                                  static_cast<double>(multiproc_cells);
    pkts_per_sec_multiproc = multiproc_wall_ms > 0.0
                                 ? multiproc_pkts / (multiproc_wall_ms / 1e3)
                                 : 0.0;
    std::filesystem::remove(store_path);
  }

  // Throughput-style headline for the committed trajectory: offered packets
  // scanned per wall-clock second on the best path over the headline cells
  // (k >= 1024, where per-cell fixed costs are amortized away).
  const double headline_pkts =
      static_cast<double>(ex.population_size()) *
      static_cast<double>(reps) * static_cast<double>(headline_cells);
  const double pkts_per_sec_best =
      headline_best_ms > 0.0 ? headline_pkts / (headline_best_ms / 1e3) : 0.0;

  std::ofstream out(out_path);
  out << "{\n  \"trace_minutes\": " << minutes
      << ",\n  \"packets\": " << ex.population_size()
      << ",\n  \"replications\": " << reps
      << ",\n  \"legacy_only\": " << (legacy_only ? "true" : "false")
      << ",\n  \"machine\": " << bench::machine_json(measured)
      << ",\n  \"cache_build\": {\"scalar_ms\": " << cache_scalar_ms
      << ", \"simd_ms\": " << cache_simd_ms
      << ", \"simd_speedup\": " << cache_scalar_ms / cache_simd_ms << "}"
      << ",\n  \"cells\": [" << cells_json.str() << "\n  ]";
  if (!legacy_only) {
    out << ",\n  \"headline\": {\"min_granularity\": " << kHeadlineMinK
        << ", \"cells\": " << headline_cells
        << ", \"legacy_ms\": " << headline_legacy_ms
        << ", \"scalar_ms\": " << headline_scalar_ms
        << ", \"best_ms\": " << headline_best_ms
        << ", \"speedup\": " << headline_legacy_ms / headline_best_ms
        << ", \"simd_speedup\": " << headline_scalar_ms / headline_best_ms
        << ", \"pkts_per_sec_best\": " << pkts_per_sec_best;
    if (run_multiproc) {
      out << ", \"pkts_per_sec_multiproc\": " << pkts_per_sec_multiproc;
    }
    out << "}";
    if (run_multiproc) {
      out << ",\n  \"multiproc\": {\"workers\": " << workers
          << ", \"cells\": " << multiproc_cells
          << ", \"wall_ms\": " << multiproc_wall_ms
          << ", \"store_write_ms\": " << store_write_ms
          << ", \"store_map_ms\": " << store_map_ms
          << ", \"cache_rebuild_ms\": " << cache_scalar_ms
          << ", \"map_vs_rebuild\": " << cache_scalar_ms / store_map_ms
          << ", \"worker_cache_builds\": " << multiproc_worker_builds
          << ", \"all_ok\": " << (multiproc_ok ? "true" : "false") << "}";
    }
    out << ",\n  \"phi_all_match\": " << (all_match ? "true" : "false");
  }
  out << "\n}\n";

  if (!legacy_only) {
    bench::note("headline (k >= " + std::to_string(kHeadlineMinK) +
                "): " + fmt_double(headline_legacy_ms, 1) + " ms legacy vs " +
                fmt_double(headline_scalar_ms, 3) + " ms scalar vs " +
                fmt_double(headline_best_ms, 3) + " ms " +
                simd::variant_name(measured) + " = " +
                fmt_double(headline_legacy_ms / headline_best_ms, 1) +
                "x total, " +
                fmt_double(headline_scalar_ms / headline_best_ms, 2) +
                "x from simd");
    bench::note("best-path throughput: " +
                fmt_double(pkts_per_sec_best / 1e6, 2) + " Mpkt/s");
    bench::note("cache build: " + fmt_double(cache_scalar_ms, 2) +
                " ms scalar vs " + fmt_double(cache_simd_ms, 2) + " ms " +
                simd::variant_name(measured) + " = " +
                fmt_double(cache_scalar_ms / cache_simd_ms, 2) + "x");
    bench::note(all_match ? "phi values bit-identical on every cell and path"
                          : "PHI MISMATCH — paths disagree");
    if (run_multiproc) {
      bench::note("multiproc (" + std::to_string(workers) + " workers, " +
                  std::to_string(multiproc_cells) + " headline cells): " +
                  fmt_double(multiproc_wall_ms, 1) + " ms wall = " +
                  fmt_double(pkts_per_sec_multiproc / 1e6, 2) + " Mpkt/s");
      bench::note("store amortization: write once " +
                  fmt_double(store_write_ms, 2) + " ms, then " +
                  fmt_double(store_map_ms, 3) + " ms map per process vs " +
                  fmt_double(cache_scalar_ms, 2) + " ms rebuild = " +
                  fmt_double(cache_scalar_ms / store_map_ms, 1) +
                  "x per extra process (worker cache builds: " +
                  std::to_string(multiproc_worker_builds) + ")");
      if (!multiproc_ok) {
        bench::note("MULTIPROC FAILURE — sharded sweep failed a cell or a "
                    "worker re-binned");
      }
    }
  }
  bench::note("wrote " + out_path);
  bench::bench_obs_write(obs_args);
  if (!all_match) return 1;
  if (run_multiproc && !multiproc_ok) return 1;

  if (!legacy_only && !baseline_path.empty()) {
    const int rc =
        check_baseline(baseline_path, bench::machine_class(measured), minutes,
                       reps, pkts_per_sec_best, tolerance_pct);
    if (rc != 0) return rc;
  }
  return 0;
}
