// Figure 5: the interarrival-time distribution (five paper bins) of
// systematic samples at five granularities over a 1024-second interval;
// the paper's legend reports each sample's phi score.
#include "bench_common.h"
#include "core/metrics.h"
#include "core/samplers.h"
#include "core/targets.h"

using namespace netsample;

int main() {
  bench::banner(
      "Figure 5 (paper: interarrival histogram at 5 granularities)",
      "Systematic sampling, 1024s interval, bins <800/<1200/<2400/<3600/>=3600us");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto interval = ex.interval(1024.0);
  const auto target = core::Target::kInterarrivalTime;
  const auto population = core::bin_population(interval, target);
  const auto pop_props = population.proportions();

  TextTable t({"series", "n", "<800", "[800,1200)", "[1200,2400)",
               "[2400,3600)", ">=3600", "phi"});
  auto props_row = [&](const std::string& name, const stats::Histogram& h,
                       double phi) {
    const auto p = h.proportions();
    t.add_row({name, fmt_count(h.total()), fmt_double(p[0], 3),
               fmt_double(p[1], 3), fmt_double(p[2], 3), fmt_double(p[3], 3),
               fmt_double(p[4], 3), fmt_double(phi, 4)});
    netsample::bench::csv_row({"fig05", name, fmt_double(p[0], 4), fmt_double(p[1], 4),
                           fmt_double(p[2], 4), fmt_double(p[3], 4),
                           fmt_double(p[4], 4), fmt_double(phi, 5)});
  };
  props_row("population", population, 0.0);

  for (std::uint64_t k : {4ULL, 64ULL, 256ULL, 4096ULL, 32768ULL}) {
    core::SystematicCountSampler sampler(k);
    const auto sample = core::draw(interval, sampler);
    const auto observed = core::bin_sample(sample, target);
    const auto m = core::score_sample(observed, population,
                                      1.0 / static_cast<double>(k));
    props_row(fmt_fraction(k), observed, m.phi);
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("paper: 'the increasing phi-value scores shown in the legend");
  bench::note("reflect the divergence in the sample accuracy as the sampling");
  bench::note("fraction decreases.'");
  return 0;
}
