// Section 6 chi-squared experiment: systematically sampling every fiftieth
// packet, across all 50 possible start offsets, how many replications does
// a chi-squared test at the 0.05 level reject?
//
// Paper: "only two or three out of the fifty possible replications produced
// chi-squared values that would convince a statistician to reject the
// hypothesis that they were produced by the original distribution."
#include <algorithm>

#include "bench_common.h"
#include "core/metrics.h"
#include "core/samplers.h"
#include "core/targets.h"

using namespace netsample;

int main() {
  bench::banner("Section 6 (paper: chi-squared test of systematic 1/50)",
                "All 50 start-offset replications, both targets, alpha=0.05");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto interval = ex.full();

  TextTable t({"target", "replications", "rejected @0.05", "paper",
               "min sig", "median-ish sig"});
  for (auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    const auto layout = core::make_target_histogram(target);
    const auto population =
        core::bin_values(core::population_values(interval, target), layout);

    int rejected = 0;
    std::vector<double> sigs;
    for (std::uint64_t offset = 0; offset < 50; ++offset) {
      core::SystematicCountSampler sampler(50, offset);
      const auto sample = core::draw(interval, sampler);
      const auto observed =
          core::bin_values(core::sample_values(sample, target), layout);
      const auto m = core::score_sample(observed, population, 1.0 / 50.0);
      sigs.push_back(m.significance);
      if (m.significance < 0.05) ++rejected;
      netsample::bench::csv_row({"sec52", core::target_name(target),
                             std::to_string(offset),
                             fmt_double(m.significance, 4),
                             fmt_double(m.chi2, 3)});
    }
    std::sort(sigs.begin(), sigs.end());
    t.add_row({core::target_name(target), "50", std::to_string(rejected),
               "2-3", fmt_double(sigs.front(), 4),
               fmt_double(sigs[sigs.size() / 2], 3)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("expectation: under the null, ~5% of replications (2-3 of 50)");
  bench::note("fall below the 0.05 significance level.");
  return 0;
}
