// Figure 6: boxplots of systematic-sampling phi scores for the packet-size
// target as a function of sampling fraction (1024-second interval).
// Replications vary the start offset within the data set, up to 50 per
// granularity as in the paper.
#include <algorithm>

#include "bench_common.h"
#include "tools/cli_args.h"

using namespace netsample;

int main(int argc, char** argv) {
  const auto options = tools::parse_figure_args(
      argc, argv,
      "fig06_phi_boxplots [--jobs N] [--pcap FILE] [--legacy-scan] "
      "[--metrics-out FILE] [--trace-out FILE]");
  bench::banner("Figure 6 (paper: boxplots of systematic phi scores)",
                "Packet size, 1024s interval, offset-replicated boxplots");

  exper::Experiment ex = tools::figure_experiment(options, bench::kDefaultSeed);

  exper::CellConfig cfg;
  cfg.method = core::Method::kSystematicCount;
  cfg.target = core::Target::kPacketSize;
  cfg.interval = ex.interval(1024.0);
  cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
  cfg.cache = &ex.binned_cache();

  const auto ladder = exper::granularity_ladder(4, 32768);
  std::vector<exper::GridTask> tasks;
  tasks.reserve(ladder.size());
  for (std::uint64_t k : ladder) {
    cfg.granularity = k;
    cfg.replications = static_cast<int>(std::min<std::uint64_t>(k, 50));
    tasks.push_back({cfg, 0});
  }
  exper::ParallelRunner runner(options.jobs);
  const auto cells = runner.run(tasks, cfg.base_seed);

  TextTable t({"1/x", "reps", "min", "q1", "median", "q3", "max",
               "boxplot [0, 0.45]"});
  const double axis_max = 0.45;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const std::uint64_t k = ladder[i];
    const auto& cell = cells[i];
    const auto b = cell.phi_boxplot();
    t.add_row({fmt_fraction(k), std::to_string(cell.config.replications),
               fmt_double(b.min, 4), fmt_double(b.q1, 4),
               fmt_double(b.median, 4), fmt_double(b.q3, 4),
               fmt_double(b.max, 4),
               stats::boxplot_ascii(b, 0.0, axis_max, 44)});
    netsample::bench::csv_row({"fig06", std::to_string(k), fmt_double(b.min, 5),
                           fmt_double(b.q1, 5), fmt_double(b.median, 5),
                           fmt_double(b.q3, 5), fmt_double(b.max, 5),
                           fmt_double(b.mean, 5)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("paper: 'two clear effects of decreasing the sampling fraction:");
  bench::note("increasing values ... and increasing variance within the set");
  bench::note("of samples for each method.'");
  tools::write_obs_outputs(options);
  return 0;
}
