// Shared driver for Figures 10 and 11: mean systematic phi vs elapsed
// measurement time for several sampling fractions. The minutes x fractions
// grid runs on the parallel experiment engine; `jobs` only changes
// wall-clock time, never the numbers. Flags come pre-parsed through
// tools::parse_figure_args (strict vocabulary, unknown flags exit 64).
#pragma once

#include "bench_common.h"
#include "tools/cli_args.h"

namespace netsample::bench {

inline int run_interval_sweep(core::Target target, const char* figure_id,
                              const char* figure_title,
                              const tools::CommonOptions& options) {
  banner(figure_title,
         "Systematic sampling; exponentially growing measurement intervals");

  exper::Experiment ex = tools::figure_experiment(options, kDefaultSeed);

  // Exponentially growing windows relative to the trace start (in minutes,
  // as the paper's x axis), capped at the full hour.
  const std::vector<double> minutes = {0.5, 1, 2, 4, 8, 16, 32, 60};
  const std::vector<std::uint64_t> fractions = {16, 256, 4096};
  const std::uint64_t base_seed = 211;

  // One grid task per (interval, fraction); the interval index seeds the
  // task so every window gets an independent, schedule-free RNG stream.
  std::vector<exper::GridTask> tasks;
  tasks.reserve(minutes.size() * fractions.size());
  for (std::size_t i = 0; i < minutes.size(); ++i) {
    for (std::uint64_t k : fractions) {
      exper::GridTask task;
      task.config.method = core::Method::kSystematicCount;
      task.config.target = target;
      task.config.granularity = k;
      task.config.interval = ex.interval(minutes[i] * 60.0);
      task.config.mean_interarrival_usec = ex.mean_interarrival_usec();
      task.config.replications = 5;
      task.config.cache = &ex.binned_cache();
      task.interval_index = i;
      tasks.push_back(task);
    }
  }
  exper::ParallelRunner runner(options.jobs);
  const auto cells = runner.run(tasks, base_seed);

  std::vector<ChartSeries> chart = {
      {"1/16", '6', {}}, {"1/256", '2', {}}, {"1/4096", '4', {}}};
  std::vector<std::string> x_ticks;

  TextTable t({"minutes", "1/16", "1/256", "1/4096"});
  for (std::size_t i = 0; i < minutes.size(); ++i) {
    std::vector<std::string> row = {fmt_double(minutes[i], 1)};
    std::vector<std::string> csv_cells = {figure_id, fmt_double(minutes[i], 2)};
    x_ticks.push_back(fmt_double(minutes[i], 1) + "min");
    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      const auto& cell = cells[i * fractions.size() + fi];
      row.push_back(fmt_double(cell.phi_mean(), 4));
      csv_cells.push_back(fmt_double(cell.phi_mean(), 5));
      chart[fi].y.push_back(std::max(1e-5, cell.phi_mean()));
    }
    t.add_row(std::move(row));
    csv_row(csv_cells);
  }
  t.print(std::cout);

  ChartOptions opts;
  opts.log_y = true;
  opts.height = 14;
  opts.x_label = "elapsed measurement time (log-spaced)";
  std::cout << "\nmean phi (log scale):\n"
            << render_chart(chart, x_ticks, opts) << "\n";
  note("paper shape: noisy at short intervals; for all sampling fractions");
  note("the scores improve (phi falls) as elapsed time grows; coarser");
  note("fractions sit uniformly higher.");
  tools::write_obs_outputs(options);
  return 0;
}

}  // namespace netsample::bench
