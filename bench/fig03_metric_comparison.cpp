// Figure 3: all candidate disparity metrics as a function of sampling
// granularity, for systematic samples of a 2048-second interval.
//
// Paper shape: cost grows with granularity; (1 - significance) stays low
// until very coarse granularities; the cost, X^2, and phi metrics "exhibit
// similar behavior", which is why the paper settles on phi.
#include "bench_common.h"
#include "core/metrics.h"
#include "core/samplers.h"
#include "core/targets.h"

using namespace netsample;

int main() {
  bench::banner("Figure 3 (paper: disparity metrics vs sampling granularity)",
                "Systematic sampling of a 2048s interval, packet-size target");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto interval = ex.interval(2048.0);
  const auto target = core::Target::kPacketSize;
  const auto layout = core::make_target_histogram(target);
  const auto population =
      core::bin_values(core::population_values(interval, target), layout);

  TextTable t({"1/x", "n", "chi2", "1-sig", "cost", "rcost", "X2",
               "k=sqrt(X2/B)", "phi"});
  for (std::uint64_t k : exper::granularity_ladder(2, 32768)) {
    // Average the metrics over a few start offsets to smooth single-draw noise.
    const int reps = 5;
    core::DisparityMetrics avg;
    avg.significance = 0.0;  // the struct defaults to 1.0
    double n_avg = 0;
    for (int r = 0; r < reps; ++r) {
      core::SystematicCountSampler sampler(k, k * static_cast<std::uint64_t>(r) /
                                                  reps);
      const auto sample = core::draw(interval, sampler);
      const auto observed =
          core::bin_values(core::sample_values(sample, target), layout);
      const auto m = core::score_sample(observed, population,
                                        1.0 / static_cast<double>(k));
      avg.chi2 += m.chi2 / reps;
      avg.significance += m.significance / reps;
      avg.cost += m.cost / reps;
      avg.rcost += m.rcost / reps;
      avg.x2 += m.x2 / reps;
      avg.avg_norm_dev += m.avg_norm_dev / reps;
      avg.phi += m.phi / reps;
      n_avg += static_cast<double>(m.sample_n) / reps;
    }
    t.add_row({fmt_fraction(k), fmt_double(n_avg, 0), fmt_double(avg.chi2, 3),
               fmt_double(1.0 - avg.significance, 3), fmt_double(avg.cost, 0),
               fmt_double(avg.rcost, 1), fmt_double(avg.x2, 4),
               fmt_double(avg.avg_norm_dev, 4), fmt_double(avg.phi, 4)});
    netsample::bench::csv_row({"fig03", std::to_string(k), fmt_double(avg.chi2, 4),
                           fmt_double(1.0 - avg.significance, 4),
                           fmt_double(avg.cost, 2), fmt_double(avg.rcost, 3),
                           fmt_double(avg.x2, 5), fmt_double(avg.avg_norm_dev, 5),
                           fmt_double(avg.phi, 5)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("expected shape: cost rises with 1/x; phi, k and X2 rise");
  bench::note("together (the three track each other); 1-sig stays near 0");
  bench::note("until the sample is very small.");
  return 0;
}
