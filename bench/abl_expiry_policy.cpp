// Ablation A3: the paper calls selecting "the next packet to arrive" after
// a timer expiry "a necessary approximation but seemingly inconsequential".
// We quantify it: coalescing missed expiries (one pending selection, the
// operational behavior) vs queueing them (back-to-back selections after an
// idle gap).
#include "bench_common.h"
#include "core/metrics.h"
#include "core/samplers.h"
#include "core/targets.h"

using namespace netsample;

int main() {
  bench::banner("Ablation A3: timer expiry policy (coalesce vs queue)",
                "Systematic timer sampling, 1024s interval, both targets");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto interval = ex.interval(1024.0);

  TextTable t({"target", "1/x", "coalesce phi", "queue phi", "coalesce n",
               "queue n"});
  for (auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    const auto layout = core::make_target_histogram(target);
    const auto population =
        core::bin_values(core::population_values(interval, target), layout);
    for (std::uint64_t k : {16ULL, 64ULL, 256ULL, 1024ULL}) {
      const auto period = MicroDuration{static_cast<std::int64_t>(
          ex.mean_interarrival_usec() * static_cast<double>(k))};
      double phi[2];
      std::uint64_t n[2];
      const core::ExpiryPolicy policies[2] = {core::ExpiryPolicy::kCoalesce,
                                              core::ExpiryPolicy::kQueue};
      for (int i = 0; i < 2; ++i) {
        core::SystematicTimerSampler sampler(period, policies[i]);
        const auto sample = core::draw(interval, sampler);
        const auto observed =
            core::bin_values(core::sample_values(sample, target), layout);
        const auto m = core::score_sample(observed, population,
                                          1.0 / static_cast<double>(k));
        phi[i] = m.phi;
        n[i] = m.sample_n;
      }
      t.add_row({core::target_name(target), fmt_fraction(k),
                 fmt_double(phi[0], 4), fmt_double(phi[1], 4),
                 std::to_string(n[0]), std::to_string(n[1])});
      netsample::bench::csv_row({"ablA3", core::target_name(target),
                             std::to_string(k), fmt_double(phi[0], 5),
                             fmt_double(phi[1], 5)});
    }
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("expected: queueing recovers a slightly larger sample after");
  bench::note("idle gaps but does not rescue the timer methods' bias --");
  bench::note("supporting the paper's 'seemingly inconsequential' remark.");
  return 0;
}
