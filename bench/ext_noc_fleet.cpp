// Extension E4: Figure 1 at per-node resolution.
//
// The paper's Section 2: the NOC polls ~14 T1 nodes every 15 minutes; the
// published Figure 1 plots the backbone-wide totals. With heterogeneous
// nodal traffic shares, the busy nodes saturate their statistics processors
// first, so the aggregate gap opens gradually -- exactly the soft onset the
// paper's figure shows. This bench prints the aggregate series plus the
// saturation month of each node.
#include "bench_common.h"
#include "collector/noc.h"

using namespace netsample;

int main() {
  bench::banner("Extension E4: Figure 1 at per-node resolution",
                "14-node fleet, heterogeneous shares, shared growth curve");

  const auto cfg = collector::NocSimulation::default_fleet();
  const auto months = collector::NocSimulation(cfg).run();

  TextTable t({"month", "SNMP (G)", "categorized (G)", "gap %",
               "nodes losing >5%"});
  for (std::size_t m = 0; m < months.size(); m += 3) {
    const auto& month = months[m];
    int losing = 0;
    for (const auto& node : month.per_node) {
      if (node.discrepancy_fraction > 0.05) ++losing;
    }
    t.add_row({month.label, fmt_double(month.snmp_total / 1e9, 2),
               fmt_double(month.categorized_total / 1e9, 2),
               fmt_double(100.0 * month.discrepancy_fraction, 1),
               std::to_string(losing) + "/" +
                   std::to_string(month.per_node.size())});
    bench::csv_row({"extE4", month.label, fmt_double(month.snmp_total / 1e9, 3),
                fmt_double(month.categorized_total / 1e9, 3),
                fmt_double(100.0 * month.discrepancy_fraction, 2),
                std::to_string(losing)});
  }
  t.print(std::cout);

  std::cout << "\nfirst month each node loses >5% of its categorization:\n";
  TextTable nodes({"node", "share", "first losing month"});
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    std::string first = "(never)";
    for (const auto& month : months) {
      if (month.per_node[n].sampling_active) break;
      if (month.per_node[n].discrepancy_fraction > 0.05) {
        first = month.label;
        break;
      }
    }
    nodes.add_row({cfg.nodes[n].name, fmt_double(cfg.nodes[n].traffic_share, 1),
                   first});
  }
  nodes.print(std::cout);
  std::cout << "\n";
  bench::note("expected: heavier-share nodes start losing first; the");
  bench::note("aggregate gap (Figure 1) opens gradually as nodes saturate");
  bench::note("one by one, then closes at the Sep 91 sampling deployment.");
  return 0;
}
