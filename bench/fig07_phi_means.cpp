// Figure 7: the means of Figure 6's boxplots -- mean systematic phi for the
// packet-size target vs sampling fraction (1024-second interval).
#include <algorithm>

#include "bench_common.h"
#include "tools/cli_args.h"

using namespace netsample;

int main(int argc, char** argv) {
  const auto options = tools::parse_figure_args(
      argc, argv,
      "fig07_phi_means [--jobs N] [--pcap FILE] [--legacy-scan] "
      "[--metrics-out FILE] [--trace-out FILE]");
  bench::banner("Figure 7 (paper: means of the Figure 6 boxplots)",
                "Mean systematic phi, packet size, 1024s interval");

  exper::Experiment ex = tools::figure_experiment(options, bench::kDefaultSeed);

  exper::CellConfig cfg;
  cfg.method = core::Method::kSystematicCount;
  cfg.target = core::Target::kPacketSize;
  cfg.interval = ex.interval(1024.0);
  cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
  cfg.cache = &ex.binned_cache();

  // Closed-form prediction for an unbiased sampler (core/theory.h): the
  // measured systematic curve should track it, since systematic/count is
  // effectively unbiased on this traffic.
  const std::size_t bins =
      core::make_target_histogram(cfg.target).bin_count();

  const auto ladder = exper::granularity_ladder(4, 32768);
  std::vector<exper::GridTask> tasks;
  tasks.reserve(ladder.size());
  for (std::uint64_t k : ladder) {
    cfg.granularity = k;
    cfg.replications = static_cast<int>(std::min<std::uint64_t>(k, 50));
    tasks.push_back({cfg, 0});
  }
  exper::ParallelRunner runner(options.jobs);
  const auto cells = runner.run(tasks, cfg.base_seed);

  TextTable t({"1/x", "mean phi", "theory E[phi]", "mean n", "curve"});
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const std::uint64_t k = ladder[i];
    const auto& cell = cells[i];
    const double phi = cell.phi_mean();
    const double theory = core::expected_phi(
        bins, static_cast<std::uint64_t>(
                  std::max(1.0, cell.mean_sample_size())));
    std::string bar(static_cast<std::size_t>(phi * 150.0), '*');
    t.add_row({fmt_fraction(k), fmt_double(phi, 4), fmt_double(theory, 4),
               fmt_double(cell.mean_sample_size(), 0), bar});
    netsample::bench::csv_row({"fig07", std::to_string(k), fmt_double(phi, 5),
                           fmt_double(theory, 5),
                           fmt_double(cell.mean_sample_size(), 1)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("expected shape: monotone growth, near zero at 1/4; the");
  bench::note("measured curve tracks the closed-form multinomial prediction");
  bench::note("(unbiasedness of packet-count sampling, quantified).");
  tools::write_obs_outputs(options);
  return 0;
}
