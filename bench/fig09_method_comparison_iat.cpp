// Figure 9: mean sample phi-value scores as a function of sampling fraction
// for the packet interarrival time distribution, all five methods.
//
// Paper: "Timer-based sampling is particularly bad for assessing
// interarrival times, since one tends to miss bursty periods with many
// packets of relatively small interarrival times."
#include "method_comparison.h"

int main(int argc, char** argv) {
  const auto options = netsample::tools::parse_figure_args(
      argc, argv, "fig09_method_comparison_iat [--jobs N] [--pcap FILE] [--legacy-scan] [--metrics-out FILE] [--trace-out FILE]");
  return netsample::bench::run_method_comparison(
      netsample::core::Target::kInterarrivalTime, "fig09",
      "Figure 9 (paper: mean phi vs fraction, interarrival time, 5 methods)", options);
}
