// Ablation A4: sensitivity of the headline result to the train-length tail.
//
// Our default workload draws train lengths geometrically (memoryless); real
// wide-area traffic later proved heavy-tailed. Does the paper's conclusion
// survive heavier tails? We regenerate the hour with Pareto train lengths
// (same per-flow means, shape 1.6 -> infinite variance) and re-measure the
// timer-vs-packet phi gap plus the burstiness (index of dispersion).
#include <algorithm>

#include "bench_common.h"
#include "stats/timeseries.h"
#include "synth/presets.h"
#include "trace/series.h"
#include "trace/trains.h"

using namespace netsample;

namespace {

void measure_env(const char* label, const exper::Experiment& ex,
                 TextTable& t) {
  // Burstiness diagnostics.
  trace::PerSecondSeries series(ex.interval(1024.0));
  const auto counts = series.packet_rates();
  const double idc16 = stats::index_of_dispersion(counts, 16);
  const auto trains =
      trace::train_stats(ex.interval(1024.0), MicroDuration{2400});

  for (auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    double packet_phi = 0.0, timer_phi = 0.0;
    for (auto m :
         {core::Method::kSystematicCount, core::Method::kSystematicTimer}) {
      exper::CellConfig cfg;
      cfg.method = m;
      cfg.target = target;
      cfg.granularity = 64;
      cfg.interval = ex.interval(1024.0);
      cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
      cfg.replications = 5;
      cfg.base_seed = 7;
      const double phi = exper::run_cell(cfg).phi_mean();
      if (m == core::Method::kSystematicCount) {
        packet_phi = phi;
      } else {
        timer_phi = phi;
      }
    }
    t.add_row({label, core::target_name(target),
               fmt_double(trains.mean_length_packets, 2),
               fmt_double(idc16, 1), fmt_double(packet_phi, 4),
               fmt_double(timer_phi, 4),
               fmt_double(timer_phi / std::max(1e-9, packet_phi), 1)});
    netsample::bench::csv_row({"ablA4", label, core::target_name(target),
                           fmt_double(trains.mean_length_packets, 3),
                           fmt_double(idc16, 2), fmt_double(packet_phi, 5),
                           fmt_double(timer_phi, 5)});
  }
}

}  // namespace

int main() {
  bench::banner("Ablation A4: train-length tail (geometric vs Pareto)",
                "Timer-vs-packet gap at k=64 under heavier burst tails");

  exper::Experiment geometric(bench::kDefaultSeed, 60.0);

  auto pareto_cfg = synth::sdsc_hour_config(bench::kDefaultSeed);
  pareto_cfg.train_length_model = synth::TrainLengthModel::kPareto;
  pareto_cfg.pareto_shape = 1.6;
  exper::Experiment pareto(synth::TraceModel(pareto_cfg).generate());

  TextTable t({"tail", "target", "mean train len", "IDC(16s)", "packet phi",
               "timer phi", "ratio"});
  measure_env("geometric", geometric, t);
  measure_env("pareto-1.6", pareto, t);
  t.print(std::cout);
  std::cout << "\n";
  bench::note("expected: the timer penalty persists (ratios >> 1) under the");
  bench::note("heavy-tailed train model -- the paper's conclusion is not an");
  bench::note("artifact of the memoryless (geometric) train assumption. IDC");
  bench::note("is dominated by the per-second rate modulation in both.");
  return 0;
}
