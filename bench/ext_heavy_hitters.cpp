// Extension E7: bounded-memory heavy hitters under sampling.
//
// The Section 8 matrix problem has two halves: sampling makes small cells
// vanish (E2), and the matrix itself is too large to keep (the paper:
// "mainly because of its large size"). A Misra-Gries summary bounds the
// memory: m counters track every network pair above n/(m+1) of traffic.
// We combine both -- a 1/50-sampled stream feeding a 32-counter summary --
// and compare the identified top pairs and their estimated volumes against
// exact full-stream counts.
#include <map>

#include "bench_common.h"
#include "core/categorical.h"
#include "core/samplers.h"
#include "stats/heavy_hitters.h"

using namespace netsample;

int main() {
  bench::banner("Extension E7: Misra-Gries heavy hitters under sampling",
                "64 counters + 1/50 systematic sampling vs exact matrix");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto view = ex.full();
  const auto key_fn = core::network_pair_key();

  // Exact per-pair counts (what an unbounded collector would keep).
  std::map<std::uint64_t, std::uint64_t> exact;
  for (const auto& p : view) ++exact[key_fn(p)];
  std::vector<std::pair<std::uint64_t, std::uint64_t>> exact_sorted(
      exact.begin(), exact.end());
  std::stable_sort(exact_sorted.begin(), exact_sorted.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });

  // Bounded-memory sampled collector. MG only ever *undercounts*, by at
  // most total/(m+1); the guaranteed bracket for a pair's sampled count is
  // [est, est + bound], which expansion scales by k.
  constexpr std::uint64_t kGranularity = 50;
  constexpr std::size_t kCounters = 64;
  core::SystematicCountSampler sampler(kGranularity);
  stats::MisraGries<std::uint64_t> mg(kCounters);
  sampler.begin(view.start_time());
  for (const auto& p : view) {
    if (sampler.offer(p)) mg.add(key_fn(p));
  }
  const std::uint64_t bracket =
      (mg.error_bound() + 1) * kGranularity;  // expanded undercount bound

  bench::note("exact matrix: " + std::to_string(exact.size()) + " pairs; " +
              std::to_string(kCounters) + "-counter summary; sampled packets: " +
              fmt_count(mg.total()));
  bench::note("guaranteed bracket width (expanded): " + fmt_count(bracket) +
              " packets");
  std::cout << "\n";

  TextTable t({"rank", "true pkts", "MG est. x50", "est+bound x50",
               "bracket holds?", "tracked?"});
  int found_in_top = 0;
  int bracket_ok = 0;
  for (std::size_t r = 0; r < 10 && r < exact_sorted.size(); ++r) {
    const auto [pair, true_count] = exact_sorted[r];
    const std::uint64_t est = mg.estimate(pair) * kGranularity;
    const bool tracked = mg.estimate(pair) > 0;
    if (tracked) ++found_in_top;
    // Sampling noise means the expanded bracket is probabilistic, not
    // absolute; the MG part of the bracket is deterministic.
    const bool holds = true_count >= est && true_count <= est + 2 * bracket;
    if (holds) ++bracket_ok;
    t.add_row({std::to_string(r + 1), fmt_count(true_count), fmt_count(est),
               fmt_count(est + bracket), holds ? "yes" : "NO",
               tracked ? "yes" : "NO"});
    bench::csv_row({"extE7", std::to_string(r + 1), std::to_string(true_count),
                std::to_string(est), std::to_string(est + bracket)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("top-10 pairs tracked: " + std::to_string(found_in_top) +
              "/10; brackets holding: " + std::to_string(bracket_ok) + "/10");
  bench::note("reading: with 64 counters (vs 220 pairs) the heavy half of");
  bench::note("the matrix survives sampling + bounded memory with known");
  bench::note("error -- the practical answer to the paper's Section 8");
  bench::note("'large size' concern.");
  return 0;
}
