// Figure 1: T1 backbone packet totals as reported by SNMP vs NNStat.
//
// The paper's figure shows the two monthly series diverging as traffic
// outgrows the dedicated statistics processor, then re-converging when
// 1-in-50 sampling was deployed in September 1991. We regenerate it from
// the capacity-limited collection simulation.
#include "bench_common.h"
#include "collector/backbone.h"

using namespace netsample;

int main() {
  bench::banner("Figure 1 (paper: SNMP vs NNStat monthly packet totals)",
                "Capacity-limited categorization processor; 1/50 sampling "
                "deployed Sep 91");

  collector::BackboneConfig cfg;  // defaults calibrated to the figure
  const auto months = collector::BackboneSimulation(cfg).run();

  bench::note("paper shape: series coincide through ~1990, gap grows to a");
  bench::note("significant fraction of total by mid-1991, then collapses at");
  bench::note("the Sep 91 sampling deployment.");
  std::cout << "\n";

  TextTable t({"month", "SNMP (G pkts)", "categorized (G pkts)", "gap %",
               "sampling", "gap bar"});
  for (const auto& m : months) {
    const double snmp_g = m.snmp_packets / 1e9;
    const double cat_g = m.categorized_estimate / 1e9;
    const double gap_pct = 100.0 * m.discrepancy_fraction;
    std::string bar(static_cast<std::size_t>(gap_pct / 2.0), '#');
    t.add_row({m.label, fmt_double(snmp_g, 2), fmt_double(cat_g, 2),
               fmt_double(gap_pct, 1), m.sampling_active ? "1/50" : "-",
               bar});
    bench::csv_row({"fig01", m.label, fmt_double(snmp_g, 4), fmt_double(cat_g, 4),
                fmt_double(gap_pct, 2), m.sampling_active ? "1" : "0"});
  }
  t.print(std::cout);

  // Summary checks mirroring the figure's story.
  const int pre = cfg.sampling_deploy_month - 1;
  const int post = cfg.sampling_deploy_month;
  std::cout << "\n";
  bench::note("gap just before deployment: " +
              fmt_double(100.0 * months[pre].discrepancy_fraction, 1) + "%");
  bench::note("gap just after deployment:  " +
              fmt_double(100.0 * months[post].discrepancy_fraction, 2) + "%");
  return 0;
}
