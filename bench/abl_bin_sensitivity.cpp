// Ablation A1: how sensitive are the phi rankings to the paper's hand-
// chosen bin edges? We re-score identical systematic samples under the
// paper's bins, a finer 6-bin layout, and a coarser 2-bin layout, for the
// packet-size target.
//
// Expected: absolute phi values shift with the layout, but the *ordering*
// across granularities (finer sampling -> lower phi) is preserved, i.e. the
// methodology's conclusions do not hinge on the exact edges.
#include "bench_common.h"
#include "core/metrics.h"
#include "core/samplers.h"
#include "core/targets.h"

using namespace netsample;

namespace {

double mean_phi(trace::TraceView interval, const stats::Histogram& layout,
                std::uint64_t k) {
  const auto pop_values =
      core::population_values(interval, core::Target::kPacketSize);
  const auto population = core::bin_values(pop_values, layout);
  double sum = 0.0;
  const int reps = 5;
  for (int r = 0; r < reps; ++r) {
    core::SystematicCountSampler sampler(
        k, k * static_cast<std::uint64_t>(r) / reps);
    const auto sample = core::draw(interval, sampler);
    const auto observed = core::bin_values(
        core::sample_values(sample, core::Target::kPacketSize), layout);
    sum += core::score_sample(observed, population, 1.0 / static_cast<double>(k))
               .phi;
  }
  return sum / reps;
}

}  // namespace

int main() {
  bench::banner("Ablation A1: phi sensitivity to bin layout",
                "Packet size target, systematic sampling, 1024s interval");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto interval = ex.interval(1024.0);

  const stats::Histogram paper_bins({41.0, 181.0});
  const stats::Histogram fine_bins({41.0, 77.0, 181.0, 257.0, 553.0});
  const stats::Histogram coarse_bins({181.0});

  TextTable t({"1/x", "paper bins (3)", "fine bins (6)", "coarse bins (2)"});
  std::vector<double> paper_series, fine_series, coarse_series;
  for (std::uint64_t k : exper::granularity_ladder(8, 16384)) {
    const double p = mean_phi(interval, paper_bins, k);
    const double f = mean_phi(interval, fine_bins, k);
    const double c = mean_phi(interval, coarse_bins, k);
    paper_series.push_back(p);
    fine_series.push_back(f);
    coarse_series.push_back(c);
    t.add_row({fmt_fraction(k), fmt_double(p, 4), fmt_double(f, 4),
               fmt_double(c, 4)});
    netsample::bench::csv_row({"ablA1", std::to_string(k), fmt_double(p, 5),
                           fmt_double(f, 5), fmt_double(c, 5)});
  }
  t.print(std::cout);

  auto trend_holds = [](const std::vector<double>& s) {
    return s.back() > s.front();
  };
  std::cout << "\n";
  bench::note(std::string("granularity trend (coarser -> higher phi) holds: ") +
              "paper=" + (trend_holds(paper_series) ? "yes" : "NO") +
              " fine=" + (trend_holds(fine_series) ? "yes" : "NO") +
              " coarse=" + (trend_holds(coarse_series) ? "yes" : "NO"));
  bench::note("conclusion: edge choice rescales phi but preserves ordering.");
  return 0;
}
