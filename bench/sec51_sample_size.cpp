// Section 5.1: theoretical random-sample sizes for estimating the mean of
// each target to +-5% / +-1% at 95% confidence (Cochran's formula).
//
// Two sets of rows: one from the paper's published population parameters
// (which must reproduce the paper's 1590 / 39752 / 2066 / 51644 exactly up
// to rounding), one from our synthetic population's own parameters.
#include "bench_common.h"
#include "core/design.h"

using namespace netsample;

namespace {

void plan_rows(TextTable& t, const std::string& target, double mu, double sigma,
               std::uint64_t population, const std::string& paper5,
               const std::string& paper1) {
  for (double r : {5.0, 1.0}) {
    const auto p = core::plan_sample_size(mu, sigma, r, 0.95, population);
    t.add_row({target, fmt_double(mu, 0), fmt_double(sigma, 0),
               fmt_double(r, 0) + "%", r == 5.0 ? paper5 : paper1,
               std::to_string(p.n),
               population ? fmt_double(100.0 * p.sampling_fraction, 3) + "%"
                          : "-"});
    netsample::bench::csv_row({"sec51", target, fmt_double(r, 0), std::to_string(p.n),
                           fmt_double(p.n_infinite, 1)});
  }
}

}  // namespace

int main() {
  bench::banner("Section 5.1 (paper: theoretical sample sizes for means)",
                "n = (100 z sigma / (r mu))^2 at 95% confidence (z = 1.96)");

  TextTable t({"target", "mu", "sigma", "accuracy", "paper n", "our n",
               "fraction of 1.6M"});

  // From the paper's published population parameters.
  plan_rows(t, "pkt size (paper params)", 232.0, 236.0, 1'600'000, "1590",
            "39752");
  plan_rows(t, "interarrival (paper params)", 2358.0, 2734.0, 1'600'000, "2066",
            "51644");

  // From our synthetic population's measured parameters.
  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  plan_rows(t, "pkt size (our trace)", ex.mean_packet_size(),
            ex.stddev_packet_size(), ex.population_size(), "-", "-");
  plan_rows(t, "interarrival (our trace)", ex.mean_interarrival_usec(),
            ex.stddev_interarrival_usec(), ex.population_size(), "-", "-");

  t.print(std::cout);
  std::cout << "\n";
  bench::note("note (paper): the mean is a poor descriptor for these bimodal/");
  bench::note("skewed distributions, which motivates the distributional");
  bench::note("phi-metric methodology of Sections 5.2-7.");
  return 0;
}
