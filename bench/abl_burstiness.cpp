// Ablation A2: is traffic burstiness the mechanism behind the paper's
// headline result (timer methods worse than packet methods)?
//
// We regenerate the workload with the packet-train process disabled
// (poissonified: same size marginal, same mean rate, same per-second
// modulation, but no trains) and compare the timer-vs-packet phi gap.
//
// Expected: for the packet-size target the timer penalty nearly vanishes
// without burstiness (sizes become independent of gaps); for interarrival
// time a penalty remains (length-biased selection is intrinsic to timer
// sampling) but shrinks.
#include "bench_common.h"
#include "synth/presets.h"

using namespace netsample;

namespace {

struct GapResult {
  double packet_phi;
  double timer_phi;
};

GapResult measure(const exper::Experiment& ex, core::Target target,
                  std::uint64_t k) {
  double phis[2] = {0, 0};
  const core::Method methods[2] = {core::Method::kSystematicCount,
                                   core::Method::kSystematicTimer};
  for (int i = 0; i < 2; ++i) {
    exper::CellConfig cfg;
    cfg.method = methods[i];
    cfg.target = target;
    cfg.granularity = k;
    cfg.interval = ex.interval(1024.0);
    cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
    cfg.replications = 5;
    cfg.base_seed = 7;
    phis[i] = exper::run_cell(cfg).phi_mean();
  }
  return {phis[0], phis[1]};
}

}  // namespace

int main() {
  bench::banner("Ablation A2: burstiness drives the timer-method penalty",
                "Bursty (trains) vs poissonified workload, k=64, 1024s");

  exper::Experiment bursty(bench::kDefaultSeed, 60.0);
  synth::TraceModel poisson_model(
      synth::poissonified(synth::sdsc_hour_config(bench::kDefaultSeed)));
  exper::Experiment poisson(poisson_model.generate());

  TextTable t({"workload", "target", "packet phi", "timer phi",
               "timer/packet ratio"});
  for (auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    for (const auto* which : {"bursty", "poisson"}) {
      const auto& ex = std::string(which) == "bursty" ? bursty : poisson;
      const auto r = measure(ex, target, 64);
      const double ratio = r.timer_phi / std::max(1e-9, r.packet_phi);
      t.add_row({which, core::target_name(target), fmt_double(r.packet_phi, 4),
                 fmt_double(r.timer_phi, 4), fmt_double(ratio, 1)});
      netsample::bench::csv_row({"ablA2", which, core::target_name(target),
                             fmt_double(r.packet_phi, 5),
                             fmt_double(r.timer_phi, 5), fmt_double(ratio, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("expected: the timer/packet ratio collapses for packet size");
  bench::note("when trains are removed, and shrinks for interarrival time.");
  return 0;
}
