// Extension E5 (paper footnote 3): the study's preliminary experiments used
// a FIX-West interexchange trace, and "the results of the two data sets
// were quite similar". We run the Figure 8/9 method comparison on both
// synthetic environments and check that the method *ranking* transfers:
// packet methods indistinguishable, timer methods uniformly worse, on both.
#include <algorithm>

#include "bench_common.h"
#include "synth/presets.h"

using namespace netsample;

namespace {

struct EnvResult {
  double packet_worst;
  double timer_best;
};

EnvResult measure(const exper::Experiment& ex, core::Target target,
                  std::uint64_t k) {
  double packet_worst = 0.0;
  double timer_best = 1e9;
  for (auto m : {core::Method::kSystematicCount, core::Method::kStratifiedCount,
                 core::Method::kSimpleRandom, core::Method::kSystematicTimer,
                 core::Method::kStratifiedTimer}) {
    exper::CellConfig cfg;
    cfg.method = m;
    cfg.target = target;
    cfg.granularity = k;
    cfg.interval = ex.interval(1024.0);
    cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
    cfg.replications = 5;
    cfg.base_seed = 77;
    const double phi = exper::run_cell(cfg).phi_mean();
    if (core::method_is_timer_driven(m)) {
      timer_best = std::min(timer_best, phi);
    } else {
      packet_worst = std::max(packet_worst, phi);
    }
  }
  return {packet_worst, timer_best};
}

}  // namespace

int main() {
  bench::banner("Extension E5 (paper footnote 3: FIX-West environment)",
                "Method ranking on the SDSC vs FIX-West synthetic workloads");

  exper::Experiment sdsc(bench::kDefaultSeed, 60.0);
  synth::TraceModel fixwest_model(synth::fixwest_minutes_config(60.0, 29));
  exper::Experiment fixwest(fixwest_model.generate());

  bench::note("SDSC hour:    " + fmt_count(sdsc.population_size()) +
              " packets, mean IAT " +
              fmt_double(sdsc.mean_interarrival_usec(), 0) + " us");
  bench::note("FIX-West hour: " + fmt_count(fixwest.population_size()) +
              " packets, mean IAT " +
              fmt_double(fixwest.mean_interarrival_usec(), 0) + " us");
  std::cout << "\n";

  TextTable t({"environment", "target", "1/x", "worst packet phi",
               "best timer phi", "timer/packet"});
  bool ranking_transfers = true;
  for (auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    for (std::uint64_t k : {16ULL, 256ULL}) {
      for (const auto* which : {"SDSC", "FIX-West"}) {
        const auto& ex = std::string(which) == "SDSC" ? sdsc : fixwest;
        const auto r = measure(ex, target, k);
        const double ratio = r.timer_best / std::max(1e-9, r.packet_worst);
        if (ratio < 1.0) ranking_transfers = false;
        t.add_row({which, core::target_name(target), fmt_fraction(k),
                   fmt_double(r.packet_worst, 4), fmt_double(r.timer_best, 4),
                   fmt_double(ratio, 1)});
        bench::csv_row({"extE5", which, core::target_name(target),
                    std::to_string(k), fmt_double(r.packet_worst, 5),
                    fmt_double(r.timer_best, 5)});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note(std::string("method ranking transfers across environments: ") +
              (ranking_transfers ? "yes" : "NO"));
  bench::note("(paper: 'the results of the two data sets were quite similar')");
  return 0;
}
