// Figure 11: mean systematic phi scores for the interarrival time
// distribution as a function of elapsed time (minutes).
#include "interval_sweep.h"

int main(int argc, char** argv) {
  const auto options = netsample::tools::parse_figure_args(
      argc, argv, "fig11_interval_iat [--jobs N] [--pcap FILE] [--legacy-scan] [--metrics-out FILE] [--trace-out FILE]");
  return netsample::bench::run_interval_sweep(
      netsample::core::Target::kInterarrivalTime, "fig11",
      "Figure 11 (paper: systematic phi vs elapsed time, interarrival)", options);
}
