// Figure 11: mean systematic phi scores for the interarrival time
// distribution as a function of elapsed time (minutes).
#include "interval_sweep.h"

int main(int argc, char** argv) {
  netsample::bench::bench_legacy_scan(argc, argv);
  return netsample::bench::run_interval_sweep(
      netsample::core::Target::kInterarrivalTime, "fig11",
      "Figure 11 (paper: systematic phi vs elapsed time, interarrival)",
      argc, argv);
}
