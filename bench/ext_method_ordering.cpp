// Extension E6: a rigorous version of the paper's ordering claim.
//
// The paper: correlated samples inhibit "statistically precise statements
// about the superiority of one sampling method over another", but still
// "allow us to easily order sampling methods". We quantify the ordering
// with the Mann-Whitney rank-sum test on independent phi replications:
// for every pair of methods, is one stochastically better, and at what
// significance?
#include "bench_common.h"
#include "stats/mannwhitney.h"

using namespace netsample;

int main() {
  bench::banner("Extension E6: Mann-Whitney ordering of sampling methods",
                "Pairwise rank-sum tests on 12 phi replications per method");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);

  const core::Method methods[] = {
      core::Method::kSystematicCount, core::Method::kStratifiedCount,
      core::Method::kSimpleRandom, core::Method::kSystematicTimer,
      core::Method::kStratifiedTimer};
  const char* short_names[] = {"sys", "strat", "rand", "t-sys", "t-strat"};

  for (auto target :
       {core::Target::kPacketSize, core::Target::kInterarrivalTime}) {
    std::cout << "\ntarget: " << core::target_name(target)
              << " (k=64, 1024s interval)\n";
    std::vector<std::vector<double>> phis;
    for (auto m : methods) {
      exper::CellConfig cfg;
      cfg.method = m;
      cfg.target = target;
      cfg.granularity = 64;
      cfg.interval = ex.interval(1024.0);
      cfg.mean_interarrival_usec = ex.mean_interarrival_usec();
      cfg.replications = 12;
      cfg.base_seed = 1234;
      phis.push_back(exper::run_cell(cfg).phi_values());
    }

    TextTable t({"A vs B", "P(phi_A > phi_B)", "p-value", "verdict @0.05"});
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = i + 1; j < 5; ++j) {
        const auto r = stats::mann_whitney_u(phis[i], phis[j]);
        std::string verdict = "indistinguishable";
        if (r.significance < 0.05) {
          verdict = r.prob_a_greater > 0.5
                        ? std::string(short_names[j]) + " better"
                        : std::string(short_names[i]) + " better";
        }
        t.add_row({std::string(short_names[i]) + " vs " + short_names[j],
                   fmt_double(r.prob_a_greater, 3),
                   fmt_double(r.significance, 4), verdict});
        bench::csv_row({"extE6", core::target_name(target), short_names[i],
                    short_names[j], fmt_double(r.prob_a_greater, 4),
                    fmt_double(r.significance, 5)});
      }
    }
    t.print(std::cout);
  }
  std::cout << "\n";
  bench::note("expected: every packet-vs-timer pair separates decisively");
  bench::note("(p < 0.001, effect size ~1); packet-vs-packet pairs are");
  bench::note("statistically indistinguishable -- the paper's two findings");
  bench::note("as formal hypothesis tests.");
  return 0;
}
