// Microbenchmarks for the statistics path: binning, scoring, and the
// special functions that back the chi-squared significance levels.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/metrics.h"
#include "core/targets.h"
#include "stats/descriptive.h"
#include "stats/special.h"
#include "synth/presets.h"

namespace {

using namespace netsample;

const trace::Trace& bench_trace() {
  static const trace::Trace t =
      synth::TraceModel(synth::sdsc_minutes_config(2.0, 23)).generate();
  return t;
}

void BM_BinPopulationSizes(benchmark::State& state) {
  const auto view = bench_trace().view();
  for (auto _ : state) {
    auto h = core::bin_population(view, core::Target::kPacketSize);
    benchmark::DoNotOptimize(h.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(view.size()));
}
BENCHMARK(BM_BinPopulationSizes);

void BM_BinPopulationInterarrivals(benchmark::State& state) {
  const auto view = bench_trace().view();
  for (auto _ : state) {
    auto h = core::bin_population(view, core::Target::kInterarrivalTime);
    benchmark::DoNotOptimize(h.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(view.size()));
}
BENCHMARK(BM_BinPopulationInterarrivals);

void BM_ScoreSample(benchmark::State& state) {
  const auto view = bench_trace().view();
  const auto population = core::bin_population(view, core::Target::kPacketSize);
  auto sample = population;  // same layout, perturbed counts
  for (auto _ : state) {
    auto m = core::score_sample(sample, population, 0.02);
    benchmark::DoNotOptimize(m.phi);
  }
}
BENCHMARK(BM_ScoreSample);

void BM_MomentAccumulator(benchmark::State& state) {
  const auto sizes = bench_trace().view().sizes();
  for (auto _ : state) {
    stats::MomentAccumulator acc;
    for (double x : sizes) acc.add(x);
    benchmark::DoNotOptimize(acc.kurtosis());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sizes.size()));
}
BENCHMARK(BM_MomentAccumulator);

void BM_ChiSquaredSf(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    x += 0.001;
    if (x > 40.0) x = 0.1;
    benchmark::DoNotOptimize(stats::chi_squared_sf(x, 4.0));
  }
}
BENCHMARK(BM_ChiSquaredSf);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.01;
  for (auto _ : state) {
    p += 1e-5;
    if (p > 0.99) p = 0.01;
    benchmark::DoNotOptimize(stats::normal_quantile(p));
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_QuantileSorted(benchmark::State& state) {
  auto sizes = bench_trace().view().sizes();
  std::sort(sizes.begin(), sizes.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::quantile_sorted(sizes, 0.95));
  }
}
BENCHMARK(BM_QuantileSorted);

}  // namespace
