// Speedup curve of the parallel experiment engine.
//
// Runs the same granularity sweep (systematic, packet size, full interval)
// on a synthetic ~1M-packet trace at --jobs 1/2/4/8 and reports wall-clock
// per sweep. The 1-thread row is the serial baseline; the ratio of the rows
// is the speedup curve. A second group measures raw ThreadPool dispatch
// overhead so pool cost can be separated from experiment cost.
//
// The trace is generated once and shared read-only across all workers (the
// engine hands out TraceView spans, never copies), so memory stays flat as
// jobs grow.
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "exper/experiment.h"
#include "exper/parallel.h"
#include "util/thread_pool.h"

namespace {

using namespace netsample;

// ~40 synthetic minutes ~= 1M packets at the calibrated SDSC rate.
const exper::Experiment& million_packet_experiment() {
  static const exper::Experiment* ex = new exper::Experiment(23, 40.0);
  return *ex;
}

void BM_ParallelSweep(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const auto& ex = million_packet_experiment();

  exper::CellConfig base;
  base.method = core::Method::kSystematicCount;
  base.target = core::Target::kPacketSize;
  base.interval = ex.full();
  base.mean_interarrival_usec = ex.mean_interarrival_usec();
  base.replications = 5;
  base.base_seed = 23;
  // Cache construction happens once, outside the timing loop; set
  // NETSAMPLE_LEGACY_SCAN=1 to benchmark the streaming path instead.
  base.cache = &ex.binned_cache();
  const auto ladder = exper::granularity_ladder(4, 1024);

  exper::ParallelRunner runner(jobs);
  for (auto _ : state) {
    auto cells = runner.sweep_granularity(base, ladder);
    benchmark::DoNotOptimize(cells);
  }
  state.counters["jobs"] = jobs;
  state.counters["fast_path"] = exper::cell_uses_fast_path(base) ? 1 : 0;
  state.counters["cells"] = static_cast<double>(ladder.size());
  state.counters["packets"] = static_cast<double>(ex.population_size());
}
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_MethodGrid(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const auto& ex = million_packet_experiment();

  std::vector<exper::GridTask> tasks;
  for (auto m : {core::Method::kSystematicCount, core::Method::kStratifiedCount,
                 core::Method::kSimpleRandom, core::Method::kSystematicTimer,
                 core::Method::kStratifiedTimer}) {
    for (std::uint64_t k : exper::granularity_ladder(16, 256)) {
      exper::GridTask t;
      t.config.method = m;
      t.config.target = core::Target::kInterarrivalTime;
      t.config.granularity = k;
      t.config.interval = ex.full();
      t.config.mean_interarrival_usec = ex.mean_interarrival_usec();
      t.config.replications = 3;
      t.config.cache = &ex.binned_cache();
      tasks.push_back(t);
    }
  }

  exper::ParallelRunner runner(jobs);
  for (auto _ : state) {
    auto cells = runner.run(tasks, 23);
    benchmark::DoNotOptimize(cells);
  }
  state.counters["jobs"] = jobs;
  state.counters["cells"] = static_cast<double>(tasks.size());
}
BENCHMARK(BM_MethodGrid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_ThreadPoolDispatchOverhead(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool(threads);
  std::vector<std::future<int>> futures;
  futures.reserve(1024);
  for (auto _ : state) {
    futures.clear();
    for (int i = 0; i < 1024; ++i) {
      futures.push_back(pool.submit([i]() { return i; }));
    }
    int sum = 0;
    for (auto& f : futures) sum += f.get();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ThreadPoolDispatchOverhead)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
