// Table 3: population summary of the packet size and interarrival time
// distributions (the two analysis targets), subject to the 400us clock.
#include "bench_common.h"
#include "trace/summary.h"

using namespace netsample;

namespace {

void row(TextTable& t, const std::string& name, const stats::Summary& s,
         const std::vector<std::string>& paper) {
  t.add_row({name + " (paper)", paper[0], paper[1], paper[2], paper[3], paper[4],
             paper[5], paper[6], paper[7], paper[8]});
  t.add_row({name + " (ours)", fmt_double(s.min, 0), fmt_double(s.p5, 0),
             fmt_double(s.q1, 0), fmt_double(s.median, 0), fmt_double(s.q3, 0),
             fmt_double(s.p95, 0), fmt_double(s.max, 0), fmt_double(s.mean, 0),
             fmt_double(s.stddev, 0)});
  netsample::bench::csv_row({"table03", name, fmt_double(s.min, 1), fmt_double(s.p5, 1),
                         fmt_double(s.q1, 1), fmt_double(s.median, 1),
                         fmt_double(s.q3, 1), fmt_double(s.p95, 1),
                         fmt_double(s.max, 1), fmt_double(s.mean, 1),
                         fmt_double(s.stddev, 1)});
}

}  // namespace

int main() {
  bench::banner("Table 3 (paper: packet size & interarrival populations)",
                "Synthetic SDSC hour, 400us measurement clock");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto s = trace::summarize_population(ex.full());

  bench::note("population: " + fmt_count(s.total_packets) +
              " packets (paper: ~1.63 million)");
  std::cout << "\n";

  TextTable t({"distribution", "min", "5%", "25%", "median", "75%", "95%",
               "max", "mean", "stddev"});
  row(t, "packet size (B)", s.packet_size,
      {"28", "40", "40", "76", "552", "552", "1500", "232", "236"});
  row(t, "interarrival (us)", s.interarrival,
      {"<400", "<400", "400", "1600", "3200", "7600", "49600", "2358", "2734"});
  t.print(std::cout);
  return 0;
}
