// Figure 8: mean sample phi-value scores as a function of sampling fraction
// for the packet size distribution, all five methods.
#include "method_comparison.h"

int main(int argc, char** argv) {
  const auto options = netsample::tools::parse_figure_args(
      argc, argv, "fig08_method_comparison_size [--jobs N] [--pcap FILE] [--legacy-scan] [--metrics-out FILE] [--trace-out FILE]");
  return netsample::bench::run_method_comparison(
      netsample::core::Target::kPacketSize, "fig08",
      "Figure 8 (paper: mean phi vs fraction, packet size, 5 methods)", options);
}
