// Extension E3: byte-volume fidelity under sampling.
//
// The NSFNET objects report packets AND bytes, and traffic-based billing
// (Section 5.2) usually charges bytes. Estimating byte volumes from sampled
// packets is harder than packet counts because byte totals are dominated by
// the large-packet mode: the estimator's error inherits the size
// distribution's variance. We sweep the granularity and report the relative
// error of the expansion estimator for total bytes, per-service bytes, and
// the phi score of the byte-weighted size distribution.
#include <cmath>

#include "bench_common.h"
#include "core/categorical.h"
#include "core/estimators.h"
#include "core/metrics.h"
#include "core/samplers.h"

using namespace netsample;

int main() {
  bench::banner("Extension E3: byte-volume fidelity under sampling",
                "Systematic sampling, 1024s interval, byte-weighted metrics");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto interval = ex.interval(1024.0);
  const double true_bytes = static_cast<double>(interval.total_bytes());

  // Byte-weighted population histogram over the paper's size bins.
  auto pop_hist = core::make_target_histogram(core::Target::kPacketSize);
  for (const auto& p : interval) {
    pop_hist.add(static_cast<double>(p.size), p.size);
  }
  std::vector<double> pop_counts(pop_hist.bin_count());
  for (std::size_t i = 0; i < pop_counts.size(); ++i) {
    pop_counts[i] = static_cast<double>(pop_hist.count(i));
  }

  TextTable t({"1/x", "est. total MB", "true MB", "err %", "CI covers?",
               "byte-weighted phi"});
  for (std::uint64_t k : exper::granularity_ladder(4, 16384)) {
    core::SystematicCountSampler sampler(k);
    const auto sample = core::draw(interval, sampler);

    std::vector<double> sampled_sizes;
    sampled_sizes.reserve(sample.size());
    auto obs_hist = core::make_target_histogram(core::Target::kPacketSize);
    for (auto i : sample.indices) {
      sampled_sizes.push_back(static_cast<double>(interval[i].size));
      obs_hist.add(static_cast<double>(interval[i].size), interval[i].size);
    }
    const auto est = core::estimate_weighted_total(
        sampled_sizes, 1.0 / static_cast<double>(k));
    const double err = 100.0 * (est.value - true_bytes) / true_bytes;
    const bool covered = est.ci_low <= true_bytes && true_bytes <= est.ci_high;

    std::vector<double> obs_counts(obs_hist.bin_count());
    for (std::size_t i = 0; i < obs_counts.size(); ++i) {
      obs_counts[i] = static_cast<double>(obs_hist.count(i));
    }
    const auto m = core::score_counts(obs_counts, pop_counts,
                                      1.0 / static_cast<double>(k));

    t.add_row({fmt_fraction(k), fmt_double(est.value / 1e6, 2),
               fmt_double(true_bytes / 1e6, 2), fmt_double(err, 2),
               covered ? "yes" : "NO", fmt_double(m.phi, 4)});
    bench::csv_row({"extE3", std::to_string(k), fmt_double(err, 3),
                covered ? "1" : "0", fmt_double(m.phi, 5)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("expected: total-byte error grows roughly as sqrt(k); the");
  bench::note("byte-weighted phi degrades faster than the packet-count phi");
  bench::note("(Figure 7) because byte mass concentrates in the 552B mode.");
  return 0;
}
