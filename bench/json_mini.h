// Minimal JSON reader for the benchmark harnesses.
//
// Just enough of RFC 8259 to load the BENCH_sweep.json artifacts this tree
// writes (objects, arrays, strings without exotic escapes, doubles, bools,
// null) so micro_sweep --baseline can gate against a committed baseline
// without a JSON dependency. tools/bench_diff.py is the full-featured
// comparator; this reader only serves the in-binary gate.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace netsample::bench {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind{Kind::kNull};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  /// object[key], or a shared null value when absent — lets callers chain
  /// lookups without checking every level.
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    static const JsonValue kNullValue;
    if (kind != Kind::kObject) return kNullValue;
    const auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
  [[nodiscard]] double num_or(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  [[nodiscard]] std::string str_or(const std::string& fallback) const {
    return kind == Kind::kString ? string : fallback;
  }
};

/// Parse `text`; returns nullptr on malformed input (no exceptions — a
/// corrupt baseline is an operator error reported by the caller).
inline std::unique_ptr<JsonValue> json_parse(const std::string& text) {
  struct Parser {
    const char* p;
    const char* end;
    bool ok{true};

    void skip_ws() {
      while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
    }
    bool consume(char c) {
      skip_ws();
      if (p < end && *p == c) {
        ++p;
        return true;
      }
      return false;
    }
    bool literal(const char* lit) {
      const char* q = lit;
      const char* save = p;
      while (*q != '\0' && p < end && *p == *q) ++p, ++q;
      if (*q == '\0') return true;
      p = save;
      return false;
    }

    JsonValue parse_value() {
      skip_ws();
      JsonValue v;
      if (p >= end) {
        ok = false;
        return v;
      }
      if (*p == '{') return parse_object();
      if (*p == '[') return parse_array();
      if (*p == '"') {
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      if (literal("true")) {
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      if (literal("false")) {
        v.kind = JsonValue::Kind::kBool;
        return v;
      }
      if (literal("null")) return v;
      // Number.
      char* num_end = nullptr;
      const double d = std::strtod(p, &num_end);
      if (num_end == p || num_end > end) {
        ok = false;
        return v;
      }
      p = num_end;
      v.kind = JsonValue::Kind::kNumber;
      v.number = d;
      return v;
    }

    std::string parse_string() {
      std::string out;
      ++p;  // opening quote
      while (p < end && *p != '"') {
        if (*p == '\\' && p + 1 < end) {
          ++p;
          switch (*p) {
            case 'n': out.push_back('\n'); break;
            case 't': out.push_back('\t'); break;
            case 'r': out.push_back('\r'); break;
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            default: ok = false; return out;  // \uXXXX etc.: unsupported
          }
          ++p;
        } else {
          out.push_back(*p++);
        }
      }
      if (p >= end) {
        ok = false;
        return out;
      }
      ++p;  // closing quote
      return out;
    }

    JsonValue parse_object() {
      JsonValue v;
      v.kind = JsonValue::Kind::kObject;
      ++p;  // '{'
      skip_ws();
      if (consume('}')) return v;
      while (ok) {
        skip_ws();
        if (p >= end || *p != '"') {
          ok = false;
          break;
        }
        const std::string key = parse_string();
        if (!ok || !consume(':')) {
          ok = false;
          break;
        }
        v.object.emplace(key, parse_value());
        if (consume(',')) continue;
        if (consume('}')) break;
        ok = false;
      }
      return v;
    }

    JsonValue parse_array() {
      JsonValue v;
      v.kind = JsonValue::Kind::kArray;
      ++p;  // '['
      skip_ws();
      if (consume(']')) return v;
      while (ok) {
        v.array.push_back(parse_value());
        if (consume(',')) continue;
        if (consume(']')) break;
        ok = false;
      }
      return v;
    }
  };

  Parser parser{text.data(), text.data() + text.size()};
  auto root = std::make_unique<JsonValue>(parser.parse_value());
  parser.skip_ws();
  if (!parser.ok || parser.p != parser.end) return nullptr;
  return root;
}

}  // namespace netsample::bench
