// Section 5 (methodological background): Cochran's efficiency orderings,
// verified empirically on controlled populations.
//
//   * randomly ordered population  -> systematic ~ stratified ~ simple random
//   * population with linear trend -> Var(stratified) < Var(systematic)
//                                     < Var(simple random)
//
// Efficiency here is the variance of the sample-mean estimator across
// replications, the metric the cited literature uses.
#include <algorithm>
#include <numeric>

#include "bench_common.h"
#include "core/samplers.h"
#include "util/rng.h"

using namespace netsample;

namespace {

trace::Trace values_as_trace(const std::vector<double>& values) {
  std::vector<trace::PacketRecord> v;
  v.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    trace::PacketRecord p;
    p.timestamp = MicroTime{i * 1000};
    p.size = static_cast<std::uint16_t>(values[i]);
    v.push_back(p);
  }
  return trace::Trace(std::move(v));
}

double variance_of_mean(const trace::Trace& t, core::Method method,
                        std::uint64_t k, int replications) {
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(replications));
  for (int r = 0; r < replications; ++r) {
    core::SamplerSpec spec;
    spec.method = method;
    spec.granularity = k;
    spec.population = t.size();
    spec.seed = 500 + static_cast<std::uint64_t>(r) * 7919;
    if (method == core::Method::kSystematicCount) {
      spec.offset = static_cast<std::uint64_t>(r) % k;
    }
    auto sampler = core::make_sampler(spec);
    const auto sample = core::draw(t.view(), *sampler);
    double sum = 0.0;
    for (auto i : sample.indices) sum += static_cast<double>(t[i].size);
    if (!sample.indices.empty()) {
      means.push_back(sum / static_cast<double>(sample.indices.size()));
    }
  }
  double m = std::accumulate(means.begin(), means.end(), 0.0) /
             static_cast<double>(means.size());
  double var = 0.0;
  for (double x : means) var += (x - m) * (x - m);
  return var / static_cast<double>(means.size());
}

}  // namespace

int main() {
  bench::banner("Section 5 (paper: efficiency of sampling strategies)",
                "Variance of the mean estimator on controlled populations");

  const std::size_t n = 100000;
  const std::uint64_t k = 100;
  const int reps = 300;

  // Linear trend population: values 100 .. 1100 plus small noise.
  Rng rng(5);
  std::vector<double> trended(n);
  for (std::size_t i = 0; i < n; ++i) {
    trended[i] = 100.0 + 1000.0 * static_cast<double>(i) / n +
                 rng.normal(0.0, 5.0);
  }
  // Randomly ordered population: the same values, shuffled.
  std::vector<double> shuffled = trended;
  for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
    std::swap(shuffled[i], shuffled[rng.uniform_below(i + 1)]);
  }

  const auto t_trend = values_as_trace(trended);
  const auto t_rand = values_as_trace(shuffled);

  TextTable t({"population", "Var[mean] systematic", "Var[mean] stratified",
               "Var[mean] simple-random"});
  for (const auto* which : {"random order", "linear trend"}) {
    const auto& tr = std::string(which) == "linear trend" ? t_trend : t_rand;
    const double v_sys =
        variance_of_mean(tr, core::Method::kSystematicCount, k, reps);
    const double v_str =
        variance_of_mean(tr, core::Method::kStratifiedCount, k, reps);
    const double v_ran =
        variance_of_mean(tr, core::Method::kSimpleRandom, k, reps);
    t.add_row({which, fmt_double(v_sys, 3), fmt_double(v_str, 3),
               fmt_double(v_ran, 3)});
    bench::csv_row({"sec5", which, fmt_double(v_sys, 4), fmt_double(v_str, 4),
                fmt_double(v_ran, 4)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("paper/Cochran: random order -> all three equivalent;");
  bench::note("linear trend -> stratified < systematic < simple random");
  bench::note("(systematic error is one shared offset; stratified averages");
  bench::note("B independent offsets; random ignores the structure).");
  return 0;
}
