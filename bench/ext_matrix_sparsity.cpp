// Extension E2 (paper Section 8's closing remark): characterizing the
// sampled source-destination traffic matrix is "more difficult ... mainly
// because of its large size and because many traffic pairs generate small
// amounts of traffic during typical sampling intervals."
//
// We quantify exactly that: as the sampling fraction falls, (a) what
// fraction of the population's network pairs appear in the sample at all
// (coverage), (b) the phi score over the full matrix, and (c) the phi
// score restricted to the top-20 pairs, which stays usable far longer.
#include "bench_common.h"
#include "core/categorical.h"
#include "core/metrics.h"
#include "core/samplers.h"

using namespace netsample;

int main() {
  bench::banner("Extension E2 (paper Sec. 8: sampled net-matrix sparsity)",
                "Coverage and phi of the src-dst network matrix vs fraction");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto interval = ex.interval(1024.0);
  const core::CategoricalTarget matrix("net-matrix", core::network_pair_key(),
                                       interval);
  const auto& pop = matrix.population_counts();
  bench::note("population matrix: " + std::to_string(matrix.category_count()) +
              " distinct network pairs over " + fmt_count(interval.size()) +
              " packets");

  // Top-20 sub-matrix population counts.
  const std::size_t top_n = std::min<std::size_t>(20, matrix.category_count());
  const std::vector<double> pop_top(pop.begin(),
                                    pop.begin() + static_cast<long>(top_n));
  std::cout << "\n";

  TextTable t({"1/x", "sample n", "pairs covered", "coverage %", "phi (full)",
               "phi (top-20)"});
  for (std::uint64_t k : exper::granularity_ladder(4, 16384)) {
    core::SystematicCountSampler sampler(k);
    const auto sample = core::draw(interval, sampler);
    const auto obs = matrix.sample_counts(sample);
    const double coverage = matrix.coverage(obs);

    const auto m_full =
        core::score_counts(obs, pop, 1.0 / static_cast<double>(k));
    const std::vector<double> obs_top(obs.begin(),
                                      obs.begin() + static_cast<long>(top_n));
    const auto m_top =
        core::score_counts(obs_top, pop_top, 1.0 / static_cast<double>(k));

    std::size_t covered = 0;
    for (std::size_t i = 0; i < matrix.category_count(); ++i) {
      if (obs[i] > 0) ++covered;
    }
    t.add_row({fmt_fraction(k), fmt_count(sample.size()),
               std::to_string(covered), fmt_double(100.0 * coverage, 1),
               fmt_double(m_full.phi, 4), fmt_double(m_top.phi, 4)});
    bench::csv_row({"extE2", std::to_string(k), fmt_double(coverage, 4),
                fmt_double(m_full.phi, 5), fmt_double(m_top.phi, 5)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("expected: coverage collapses with the fraction (the small-cell");
  bench::note("problem), full-matrix phi degrades accordingly, while the");
  bench::note("top-20 sub-matrix remains accurately characterized.");
  return 0;
}
