// Shared scaffolding for the figure/table reproduction binaries.
//
// Every binary prints (a) a banner naming the paper artifact it regenerates,
// (b) the paper's reported values where the paper gives them, and (c) our
// measured values, as an aligned table plus `CSV,`-prefixed lines that a
// plotting script can grep out.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exper/experiment.h"
#include "exper/runner.h"
#include "util/format.h"

namespace netsample::bench {

/// Default experiment context: the calibrated synthetic SDSC hour.
/// Seed 23 everywhere makes every bench reproducible run-to-run.
inline constexpr std::uint64_t kDefaultSeed = 23;

inline void banner(const std::string& artifact, const std::string& what) {
  std::cout << "==============================================================\n"
            << artifact << "\n"
            << what << "\n"
            << "==============================================================\n";
}

inline void note(const std::string& text) { std::cout << "  " << text << "\n"; }

/// Emit one machine-readable CSV line (greppable with '^CSV,').
inline void csv(const std::vector<std::string>& fields) {
  std::cout << "CSV";
  for (const auto& f : fields) std::cout << "," << f;
  std::cout << "\n";
}

}  // namespace netsample::bench
