// Shared scaffolding for the figure/table reproduction binaries.
//
// Every binary prints (a) a banner naming the paper artifact it regenerates,
// (b) the paper's reported values where the paper gives them, and (c) our
// measured values, as an aligned table plus `CSV,`-prefixed lines that a
// plotting script can grep out.
//
// The six headline figure binaries (fig06–fig11) parse their flags through
// tools/cli_args.h — strict vocabulary, unknown flags exit 64. The helpers
// below stay for the table/ablation binaries and the google-benchmark
// micro benches, which must pass --benchmark_* flags through untouched.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "netsample/netsample.h"

namespace netsample::bench {

/// Default experiment context: the calibrated synthetic SDSC hour.
/// Seed 23 everywhere makes every bench reproducible run-to-run.
inline constexpr std::uint64_t kDefaultSeed = 23;

/// Strictly parse a worker count. atoi-style silent coercion ("abc" -> 0,
/// "4x" -> 4) would quietly turn a typo into "one worker per hardware
/// thread"; a bad value aborts with a clear message instead.
inline int parse_jobs(const char* source, const char* text) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < 0 || v > 4096) {
    std::fprintf(stderr,
                 "error: %s: expected a worker count in [0, 4096] "
                 "(0 = one per hardware thread), got \"%s\"\n",
                 source, text);
    std::exit(2);
  }
  return static_cast<int>(v);
}

/// Worker count for the figure sweeps: `--jobs N` beats the NETSAMPLE_JOBS
/// environment variable beats 0 (= one worker per hardware thread). Any
/// value produces bit-identical figures — seeds derive from grid
/// coordinates, not from scheduling (see docs/PARALLELISM.md).
inline int bench_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs requires a value\n");
        std::exit(2);
      }
      return parse_jobs("--jobs", argv[i + 1]);
    }
  }
  if (const char* env = std::getenv("NETSAMPLE_JOBS")) {
    return parse_jobs("NETSAMPLE_JOBS", env);
  }
  return 0;
}

/// Honor `--legacy-scan`: force the original streaming per-packet path
/// instead of the fused cache fast path (see docs/PERFORMANCE.md). Returns
/// whether the flag was present. NETSAMPLE_LEGACY_SCAN=1 in the environment
/// has the same effect without the flag.
inline bool bench_legacy_scan(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--legacy-scan") {
      core::force_legacy_scan(true);
      return true;
    }
  }
  return false;
}

/// Experiment context for a figure binary: `--pcap FILE` (or NETSAMPLE_PCAP)
/// regenerates the figure from a real capture instead of the synthetic hour.
/// Real captures are read in salvage mode, and any data loss — corrupt
/// records skipped, bytes discarded while resyncing, a torn trailing record
/// — is printed with the figure so a damaged input is never silently folded
/// into the numbers. Exits 65 (data loss under strict parsing is the only
/// way this read fails beyond I/O) on an unreadable capture.
inline exper::Experiment bench_experiment(int argc, char** argv,
                                          std::uint64_t seed = kDefaultSeed,
                                          double minutes = 60.0) {
  std::string path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--pcap") path = argv[i + 1];
  }
  if (path.empty()) {
    if (const char* env = std::getenv("NETSAMPLE_PCAP")) path = env;
  }
  if (path.empty()) return exper::Experiment(seed, minutes);

  pcap::ParseOptions options;
  options.on_corrupt = pcap::OnCorrupt::kSalvage;
  pcap::ParseStats parse_stats;
  pcap::DecodeStats decode_stats;
  auto t = pcap::read_trace(path, options, &parse_stats, &decode_stats);
  if (!t) {
    std::fprintf(stderr, "error: %s\n", t.status().to_string().c_str());
    std::exit(65);
  }
  std::cout << "  parent population: " << path << " ("
            << fmt_count(decode_stats.decoded) << " IPv4 packets)\n";
  if (!parse_stats.clean() || decode_stats.malformed > 0) {
    std::cout << "  data loss: " << parse_stats.corrupt_records
              << " corrupt records, " << parse_stats.skipped_bytes
              << " bytes skipped resyncing, " << parse_stats.torn_tail_bytes
              << " torn tail bytes, " << decode_stats.malformed
              << " malformed packets\n";
  }
  return exper::Experiment(std::move(*t));
}

/// Honor `--simd VARIANT`: force a SIMD kernel variant (scalar/avx2/neon)
/// for everything the bench does. Results are bit-identical across
/// variants; only wall clock changes. Returns the forced variant, or
/// nullopt when the flag is absent (NETSAMPLE_SIMD / autodetect applies).
inline std::optional<core::simd::Variant> bench_simd(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--simd") continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: --simd requires a value\n");
      std::exit(2);
    }
    const auto variant = core::simd::parse_variant(argv[i + 1]);
    if (!variant.has_value()) {
      std::fprintf(stderr,
                   "error: --simd: expected scalar, avx2, or neon, got "
                   "\"%s\"\n",
                   argv[i + 1]);
      std::exit(2);
    }
    core::simd::force_variant(*variant);
    return variant;
  }
  return std::nullopt;
}

/// The machine-class tag for benchmark artifacts: architecture plus the
/// SIMD variant the numbers were produced with (the best available one
/// unless --simd forced another). Baselines under bench/baselines/ are
/// committed per machine class, and tools/bench_diff.py refuses to compare
/// reports whose classes differ.
inline std::string machine_arch() {
#if defined(__x86_64__) || defined(_M_X64)
  return "x86_64";
#elif defined(__aarch64__)
  return "aarch64";
#else
  return "unknown";
#endif
}

inline std::string machine_class(core::simd::Variant measured) {
  return machine_arch() + "-" + core::simd::variant_name(measured);
}

/// JSON "machine" block: everything needed to decide whether two BENCH
/// artifacts are comparable — arch, detected CPU features, the variant the
/// report measured, compiler, and build type.
inline std::string machine_json(core::simd::Variant measured) {
  std::ostringstream os;
  os << "{\"arch\": \"" << machine_arch() << "\", \"cpu_features\": \""
     << core::simd::cpu_feature_string() << "\", \"simd_variant\": \""
     << core::simd::variant_name(measured) << "\", \"compiler\": \""
#if defined(__clang__)
     << "clang " << __clang_major__ << "." << __clang_minor__
#elif defined(__GNUC__)
     << "gcc " << __GNUC__ << "." << __GNUC_MINOR__
#else
     << "unknown"
#endif
     << "\", \"build_type\": \""
#if defined(NETSAMPLE_BUILD_TYPE)
     << NETSAMPLE_BUILD_TYPE
#elif defined(NDEBUG)
     << "optimized"
#else
     << "debug"
#endif
     << "\", \"machine_class\": \"" << machine_class(measured) << "\"}";
  return os.str();
}

/// Observability outputs requested on the command line. bench_obs() parses
/// `--metrics-out FILE` / `--trace-out FILE` and flips the matching obs
/// enable flags immediately, so everything the figure run does afterwards
/// is counted; bench_obs_write() exports the files once the figure is done.
/// The masked metrics JSON is part of the figures' determinism contract:
/// bit-identical across --jobs levels for a fixed seed (docs/OBSERVABILITY.md).
struct ObsArgs {
  std::string metrics_path;
  std::string trace_path;
};

inline ObsArgs bench_obs(int argc, char** argv) {
  ObsArgs out;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--metrics-out") out.metrics_path = argv[i + 1];
    if (std::string(argv[i]) == "--trace-out") out.trace_path = argv[i + 1];
  }
  if (!out.metrics_path.empty() || !out.trace_path.empty()) {
    obs::set_enabled(true);
  }
  if (!out.trace_path.empty()) obs::Tracer::global().set_enabled(true);
  return out;
}

/// Write the requested snapshots; exits 2 on IO failure so a figure run in
/// CI cannot silently lose its metrics.
inline void bench_obs_write(const ObsArgs& args) {
  if (!obs::write_metrics_file(args.metrics_path) ||
      !obs::write_trace_file(args.trace_path)) {
    std::exit(2);
  }
}

inline void banner(const std::string& artifact, const std::string& what) {
  std::cout << "==============================================================\n"
            << artifact << "\n"
            << what << "\n"
            << "==============================================================\n";
}

inline void note(const std::string& text) { std::cout << "  " << text << "\n"; }

/// Emit one machine-readable CSV line (greppable with '^CSV,') through the
/// facade's row emitter, which also supplies RFC-4180-ish quoting the old
/// hand-rolled join never had.
inline void csv_row(const std::vector<std::string>& fields) {
  std::cout << netsample::csv_line(fields, "CSV") << "\n";
}

// bench::csv, the pre-facade name for csv_row(), was deprecated in v1.0
// and removed in v1.1 per the one-minor-release grace window (docs/API.md,
// "Deprecation policy"). CI greps that it stays gone.

}  // namespace netsample::bench
