// Shared scaffolding for the figure/table reproduction binaries.
//
// Every binary prints (a) a banner naming the paper artifact it regenerates,
// (b) the paper's reported values where the paper gives them, and (c) our
// measured values, as an aligned table plus `CSV,`-prefixed lines that a
// plotting script can grep out.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exper/experiment.h"
#include "exper/parallel.h"
#include "exper/runner.h"
#include "util/format.h"

namespace netsample::bench {

/// Default experiment context: the calibrated synthetic SDSC hour.
/// Seed 23 everywhere makes every bench reproducible run-to-run.
inline constexpr std::uint64_t kDefaultSeed = 23;

/// Worker count for the figure sweeps: `--jobs N` beats the NETSAMPLE_JOBS
/// environment variable beats 0 (= one worker per hardware thread). Any
/// value produces bit-identical figures — seeds derive from grid
/// coordinates, not from scheduling (see docs/PARALLELISM.md).
inline int bench_jobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--jobs") return std::atoi(argv[i + 1]);
  }
  if (const char* env = std::getenv("NETSAMPLE_JOBS")) return std::atoi(env);
  return 0;
}

inline void banner(const std::string& artifact, const std::string& what) {
  std::cout << "==============================================================\n"
            << artifact << "\n"
            << what << "\n"
            << "==============================================================\n";
}

inline void note(const std::string& text) { std::cout << "  " << text << "\n"; }

/// Emit one machine-readable CSV line (greppable with '^CSV,').
inline void csv(const std::vector<std::string>& fields) {
  std::cout << "CSV";
  for (const auto& f : fields) std::cout << "," << f;
  std::cout << "\n";
}

}  // namespace netsample::bench
