// Microbenchmarks: per-packet cost of every sampling discipline.
//
// The operational question behind the paper's Section 2: the selection code
// runs in the forwarding path of the T3 subsystems, so its per-packet cost
// is what bounds the switching capacity impact.
#include <benchmark/benchmark.h>

#include "core/samplers.h"
#include "synth/presets.h"

namespace {

using namespace netsample;

const trace::Trace& bench_trace() {
  static const trace::Trace t =
      synth::TraceModel(synth::sdsc_minutes_config(2.0, 23)).generate();
  return t;
}

void run_sampler(benchmark::State& state, core::Sampler& sampler) {
  const auto view = bench_trace().view();
  std::size_t selected = 0;
  for (auto _ : state) {
    sampler.begin(view.start_time());
    for (const auto& p : view) {
      if (sampler.offer(p)) ++selected;
    }
    benchmark::DoNotOptimize(selected);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(view.size()));
}

void BM_SystematicCount(benchmark::State& state) {
  core::SystematicCountSampler s(static_cast<std::uint64_t>(state.range(0)));
  run_sampler(state, s);
}
BENCHMARK(BM_SystematicCount)->Arg(50)->Arg(1024);

void BM_StratifiedCount(benchmark::State& state) {
  core::StratifiedCountSampler s(static_cast<std::uint64_t>(state.range(0)),
                                 Rng(7));
  run_sampler(state, s);
}
BENCHMARK(BM_StratifiedCount)->Arg(50)->Arg(1024);

void BM_SimpleRandom(benchmark::State& state) {
  const auto n = bench_trace().size() / static_cast<std::size_t>(state.range(0));
  core::SimpleRandomSampler s(n, bench_trace().size(), Rng(7));
  run_sampler(state, s);
}
BENCHMARK(BM_SimpleRandom)->Arg(50)->Arg(1024);

void BM_SystematicTimer(benchmark::State& state) {
  core::SystematicTimerSampler s(
      MicroDuration{2358 * state.range(0)});
  run_sampler(state, s);
}
BENCHMARK(BM_SystematicTimer)->Arg(50)->Arg(1024);

void BM_StratifiedTimer(benchmark::State& state) {
  core::StratifiedTimerSampler s(MicroDuration{2358 * state.range(0)}, Rng(7));
  run_sampler(state, s);
}
BENCHMARK(BM_StratifiedTimer)->Arg(50)->Arg(1024);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    synth::TraceModel model(
        synth::sdsc_minutes_config(1.0, static_cast<std::uint64_t>(state.iterations())));
    auto t = model.generate();
    benchmark::DoNotOptimize(t.size());
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
