// Microbenchmarks: per-packet cost of every sampling discipline.
//
// The operational question behind the paper's Section 2: the selection code
// runs in the forwarding path of the T3 subsystems, so its per-packet cost
// is what bounds the switching capacity impact.
//
// The BM_Kernel* group benchmarks the index-emitting kernels
// (core/select_indices.h) on the same trace and granularities as the
// streaming BM_* group above them; items/sec is offered packets in both, so
// the ratio of matching rows is the fast-path speedup per discipline.
#include <benchmark/benchmark.h>

#include "core/samplers.h"
#include "core/select_indices.h"
#include "core/trace_cache.h"
#include "synth/presets.h"

namespace {

using namespace netsample;

const trace::Trace& bench_trace() {
  static const trace::Trace t =
      synth::TraceModel(synth::sdsc_minutes_config(2.0, 23)).generate();
  return t;
}

void run_sampler(benchmark::State& state, core::Sampler& sampler) {
  const auto view = bench_trace().view();
  std::size_t selected = 0;
  for (auto _ : state) {
    sampler.begin(view.start_time());
    for (const auto& p : view) {
      if (sampler.offer(p)) ++selected;
    }
    benchmark::DoNotOptimize(selected);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(view.size()));
}

void BM_SystematicCount(benchmark::State& state) {
  core::SystematicCountSampler s(static_cast<std::uint64_t>(state.range(0)));
  run_sampler(state, s);
}
BENCHMARK(BM_SystematicCount)->Arg(50)->Arg(1024);

void BM_StratifiedCount(benchmark::State& state) {
  core::StratifiedCountSampler s(static_cast<std::uint64_t>(state.range(0)),
                                 Rng(7));
  run_sampler(state, s);
}
BENCHMARK(BM_StratifiedCount)->Arg(50)->Arg(1024);

void BM_SimpleRandom(benchmark::State& state) {
  const auto n = bench_trace().size() / static_cast<std::size_t>(state.range(0));
  core::SimpleRandomSampler s(n, bench_trace().size(), Rng(7));
  run_sampler(state, s);
}
BENCHMARK(BM_SimpleRandom)->Arg(50)->Arg(1024);

void BM_SystematicTimer(benchmark::State& state) {
  core::SystematicTimerSampler s(
      MicroDuration{2358 * state.range(0)});
  run_sampler(state, s);
}
BENCHMARK(BM_SystematicTimer)->Arg(50)->Arg(1024);

void BM_StratifiedTimer(benchmark::State& state) {
  core::StratifiedTimerSampler s(MicroDuration{2358 * state.range(0)}, Rng(7));
  run_sampler(state, s);
}
BENCHMARK(BM_StratifiedTimer)->Arg(50)->Arg(1024);

const core::BinnedTraceCache& bench_cache() {
  static const core::BinnedTraceCache cache(bench_trace().view());
  return cache;
}

core::SamplerSpec kernel_spec(core::Method m, std::uint64_t k) {
  core::SamplerSpec spec;
  spec.method = m;
  spec.granularity = k;
  spec.population = bench_trace().size();
  spec.mean_interarrival_usec = 2358.0;  // matches the streaming timer args
  spec.seed = 7;
  return spec;
}

void run_kernel(benchmark::State& state, const core::SamplerSpec& spec) {
  const auto& cache = bench_cache();
  std::size_t selected = 0;
  for (auto _ : state) {
    auto indices = core::select_indices(spec, cache, 0, cache.size());
    selected += indices.size();
    benchmark::DoNotOptimize(indices);
    benchmark::DoNotOptimize(selected);
  }
  // Offered (not selected) packets, so rows divide against the streaming
  // group directly.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cache.size()));
}

void BM_KernelSystematicCount(benchmark::State& state) {
  run_kernel(state, kernel_spec(core::Method::kSystematicCount,
                                static_cast<std::uint64_t>(state.range(0))));
}
BENCHMARK(BM_KernelSystematicCount)->Arg(50)->Arg(1024);

void BM_KernelStratifiedCount(benchmark::State& state) {
  run_kernel(state, kernel_spec(core::Method::kStratifiedCount,
                                static_cast<std::uint64_t>(state.range(0))));
}
BENCHMARK(BM_KernelStratifiedCount)->Arg(50)->Arg(1024);

void BM_KernelSimpleRandom(benchmark::State& state) {
  run_kernel(state, kernel_spec(core::Method::kSimpleRandom,
                                static_cast<std::uint64_t>(state.range(0))));
}
BENCHMARK(BM_KernelSimpleRandom)->Arg(50)->Arg(1024);

void BM_KernelSystematicTimer(benchmark::State& state) {
  run_kernel(state, kernel_spec(core::Method::kSystematicTimer,
                                static_cast<std::uint64_t>(state.range(0))));
}
BENCHMARK(BM_KernelSystematicTimer)->Arg(50)->Arg(1024);

void BM_KernelStratifiedTimer(benchmark::State& state) {
  run_kernel(state, kernel_spec(core::Method::kStratifiedTimer,
                                static_cast<std::uint64_t>(state.range(0))));
}
BENCHMARK(BM_KernelStratifiedTimer)->Arg(50)->Arg(1024);

void BM_CacheConstruction(benchmark::State& state) {
  const auto view = bench_trace().view();
  for (auto _ : state) {
    core::BinnedTraceCache cache(view);
    benchmark::DoNotOptimize(cache.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(view.size()));
}
BENCHMARK(BM_CacheConstruction)->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    synth::TraceModel model(
        synth::sdsc_minutes_config(1.0, static_cast<std::uint64_t>(state.iterations())));
    auto t = model.generate();
    benchmark::DoNotOptimize(t.size());
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
