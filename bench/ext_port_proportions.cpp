// Extension E1 (paper Section 8): apply the phi methodology to a
// proportion-based characterization -- the TCP/UDP well-known service port
// distribution -- exactly as the paper proposes. Mean phi vs sampling
// fraction for all five methods, using the service-port categorical target.
#include "bench_common.h"
#include "core/categorical.h"
#include "core/metrics.h"
#include "core/samplers.h"

using namespace netsample;

int main() {
  bench::banner("Extension E1 (paper Sec. 8: port-distribution target)",
                "phi methodology on the TCP/UDP service proportions");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto interval = ex.interval(1024.0);
  const core::CategoricalTarget target("service-port", core::service_port_key(),
                                       interval);
  bench::note("categories (distinct services incl. 'other'): " +
              std::to_string(target.category_count()));
  std::cout << "\n";

  const core::Method methods[] = {
      core::Method::kSystematicCount, core::Method::kStratifiedCount,
      core::Method::kSimpleRandom, core::Method::kSystematicTimer,
      core::Method::kStratifiedTimer};

  TextTable t({"1/x", "systematic", "stratified", "simple-rand", "sys/timer",
               "strat/timer"});
  for (std::uint64_t k : exper::granularity_ladder(4, 16384)) {
    std::vector<std::string> row = {fmt_fraction(k)};
    std::vector<std::string> csv_row = {"extE1", std::to_string(k)};
    for (auto m : methods) {
      double phi_sum = 0.0;
      const int reps = 5;
      for (int r = 0; r < reps; ++r) {
        exper::CellConfig cell;
        cell.method = m;
        cell.granularity = k;
        cell.interval = interval;
        cell.mean_interarrival_usec = ex.mean_interarrival_usec();
        cell.replications = reps;
        cell.base_seed = 303;
        auto sampler = core::make_sampler(exper::replication_spec(cell, r));
        const auto sample = core::draw(interval, *sampler);
        const auto obs = target.sample_counts(sample);
        phi_sum += core::score_counts(obs, target.population_counts(),
                                      1.0 / static_cast<double>(k))
                       .phi;
      }
      row.push_back(fmt_double(phi_sum / reps, 4));
      csv_row.push_back(fmt_double(phi_sum / reps, 5));
    }
    t.add_row(std::move(row));
    bench::csv_row(csv_row);
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("expected: the Figure 8/9 picture transfers to proportions --");
  bench::note("packet methods coincide; timer methods are biased (bursts");
  bench::note("belong to specific services, so missing them skews the mix).");
  return 0;
}
