// Figure 4: the packet-size distribution (three paper bins) of systematic
// samples at five granularities over a 1024-second interval, against the
// full population's distribution.
#include "bench_common.h"
#include "core/metrics.h"
#include "core/samplers.h"
#include "core/targets.h"

using namespace netsample;

int main() {
  bench::banner("Figure 4 (paper: packet-size histogram at 5 granularities)",
                "Systematic sampling, 1024s interval, bins <41 / 41-180 / >180");

  exper::Experiment ex(bench::kDefaultSeed, 60.0);
  const auto interval = ex.interval(1024.0);
  const auto target = core::Target::kPacketSize;
  const auto population = core::bin_population(interval, target);
  const auto pop_props = population.proportions();

  TextTable t({"series", "n", "<41", "[41,181)", ">=181", "phi"});
  t.add_row({"population", fmt_count(population.total()),
             fmt_double(pop_props[0], 3), fmt_double(pop_props[1], 3),
             fmt_double(pop_props[2], 3), "0"});
  netsample::bench::csv_row({"fig04", "population", fmt_double(pop_props[0], 4),
                         fmt_double(pop_props[1], 4), fmt_double(pop_props[2], 4),
                         "0"});

  for (std::uint64_t k : {4ULL, 64ULL, 256ULL, 4096ULL, 32768ULL}) {
    core::SystematicCountSampler sampler(k);
    const auto sample = core::draw(interval, sampler);
    const auto observed = core::bin_sample(sample, target);
    const auto props = observed.proportions();
    const auto m = core::score_sample(observed, population,
                                      1.0 / static_cast<double>(k));
    t.add_row({fmt_fraction(k), fmt_count(observed.total()),
               fmt_double(props[0], 3), fmt_double(props[1], 3),
               fmt_double(props[2], 3), fmt_double(m.phi, 4)});
    netsample::bench::csv_row({"fig04", std::to_string(k), fmt_double(props[0], 4),
                           fmt_double(props[1], 4), fmt_double(props[2], 4),
                           fmt_double(m.phi, 5)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::note("expected shape: bin proportions track the population closely");
  bench::note("at fine granularities and drift as 1/x grows; phi grows with");
  bench::note("the drift.");
  return 0;
}
